// KernelMako: the matrix-aligned batched ERI engine (Section 3.1).
//
// Implements Algorithm 1 of the paper: for each primitive-pair combination,
// compute r-integrals (Eq. 4-5), assemble two-index Hermite [p~|q~] matrices
// (Eq. 6), and execute the Hermite->AO basis transformation as GEMMs
// (Eq. 7):
//
//     (ab|q~]  += E_AB^T x [p~|q~]        (per bra primitive pair)
//     (ab|cd)  += (ab|q~] x E_CD          (per ket primitive pair)
//
// The three operator-level optimizations are all present and toggleable so
// the Fig-7 ablation can isolate them:
//   * Implicit instruction parallelism — the GEMM micro-kernels carry a
//     CUTLASS-style unroll factor (GemmConfig::ilp);
//   * Lightweight layout swizzle — the batch's r-integrals are produced in
//     striped layout (the coalesced-write order) and converted to the
//     blocked layout MatMul requires through XOR-swizzled tiles;
//   * GEMM coalescing — for K_AB = K_CD = 1 classes the two GEMMs fuse,
//     keeping (ab|q~] in a hot on-chip-sized staging tile (Eq. 11).
//
// Quantized execution (QuantMako, Section 3.2) plugs in through the same
// config: the basis-transformation GEMMs run at FP16/TF32 with group scaling
// and FP32 accumulation; r/pq stages stay FP64 (stage-aware quantization).
#pragma once

#include <span>
#include <vector>

#include "accel/device.hpp"
#include "basis/basis_set.hpp"
#include "kernelmako/class_plan.hpp"
#include "kernelmako/eri_class.hpp"
#include "linalg/backend.hpp"

namespace mako {

/// One shell quartet to evaluate.  All quartets of a batch must share the
/// same EriClassKey.
struct QuartetRef {
  const Shell* a = nullptr;
  const Shell* b = nullptr;
  const Shell* c = nullptr;
  const Shell* d = nullptr;
};

/// Kernel configuration (what CompilerMako tunes).
struct KernelConfig {
  GemmConfig gemm{};            ///< tile shape + ILP factor + precision
  bool fuse_gemms = true;       ///< GEMM coalescing when K_AB == K_CD == 1
  bool use_swizzle = true;      ///< swizzled striped->blocked conversion
  bool group_scaling = true;    ///< per-class scaling in quantized mode
  /// FP32 in-kernel accumulation with FP64 hand-off (Section 3.2.2).  When
  /// false in FP16 mode, the Table-2 "Baseline FP16" kernel (naive binary16
  /// accumulator) runs instead.
  bool dual_stage_accumulation = true;

  [[nodiscard]] bool quantized() const noexcept {
    return gemm.precision != Precision::kFP64;
  }
};

/// Work/statistics record of a batch execution, consumed by the device
/// time model and the benchmark harnesses.
struct BatchStats {
  double gemm_flops = 0.0;
  double scalar_flops = 0.0;
  double global_bytes = 0.0;
  int kernel_launches = 0;
  double wall_seconds = 0.0;

  [[nodiscard]] KernelWork work(Precision p) const {
    return KernelWork{gemm_flops, scalar_flops, global_bytes, kernel_launches,
                      p};
  }
};

/// Batched matrix-aligned ERI engine.
///
/// Every basis-transformation GEMM dispatches through a GemmBackend; the
/// ExecutionContext (via FockBuilder) injects the run's backend and plan
/// cache.  When none is injected the engine pins the registry's built-in
/// default backend — deliberately ignoring the MAKO_BACKEND ambient override
/// so direct unit tests of quantized kernel numerics stay deterministic.
/// Quantized execution additionally requires the backend's `quantized`
/// capability; without it the transform GEMMs degrade to exact FP64.
class BatchedEriEngine {
 public:
  explicit BatchedEriEngine(KernelConfig config = {},
                            const GemmBackend* backend = nullptr,
                            EriPlanCache* plans = nullptr)
      : config_(config), backend_(backend), plans_(plans) {}

  [[nodiscard]] const KernelConfig& config() const noexcept { return config_; }
  void set_config(const KernelConfig& config) noexcept { config_ = config; }

  /// The backend this engine dispatches through.
  [[nodiscard]] const GemmBackend& backend() const;

  /// Computes spherical quartets for a class-homogeneous batch.
  /// out is resized to batch.size(); out[i] is row-major
  /// [nsph(la)][nsph(lb)][nsph(lc)][nsph(ld)].
  /// Returns execution statistics.
  ///
  /// Resolves the class plan from the process-wide cache and executes on a
  /// thread-local scratch arena — steady-state calls are allocation-free.
  BatchStats compute_batch(const EriClassKey& key,
                           std::span<const QuartetRef> batch,
                           std::vector<std::vector<double>>& out) const;

  /// Plan-explicit variant: executes against a pre-resolved class plan and a
  /// caller-owned scratch arena (one per thread).  Callers whose batches are
  /// pre-classified by construction (FockPlan routing emits class-segmented
  /// spans) pass `verify_class = false` to skip the per-quartet homogeneity
  /// checks on the hot path.
  BatchStats compute_batch(const EriClassPlan& plan,
                           std::span<const QuartetRef> batch,
                           std::vector<std::vector<double>>& out,
                           EriScratch& scratch,
                           bool verify_class = true) const;

  /// Derives the class key of a quartet (contraction degrees included).
  static EriClassKey classify(const QuartetRef& q);

 private:
  KernelConfig config_;
  const GemmBackend* backend_;  ///< null -> registry default
  EriPlanCache* plans_;         ///< null -> process-wide cache
};

}  // namespace mako
