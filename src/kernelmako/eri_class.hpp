// ERI class descriptor.
//
// ERIs sharing an angular-momentum pattern and contraction degrees follow the
// same static execution pattern (Section 3.3): same intermediate shapes, same
// GEMM dimensions, same reuse structure.  The class key is what CompilerMako
// plans/tunes against and what KernelMako batches over.
#pragma once

#include <string>
#include <tuple>

#include "integrals/hermite.hpp"
#include "basis/spherical.hpp"

namespace mako {

struct EriClassKey {
  int la = 0, lb = 0, lc = 0, ld = 0;
  int kab = 1;  ///< bra contraction degree (primitive pairs)
  int kcd = 1;  ///< ket contraction degree

  [[nodiscard]] auto tie() const {
    return std::tie(la, lb, lc, ld, kab, kcd);
  }
  [[nodiscard]] bool operator<(const EriClassKey& o) const {
    return tie() < o.tie();
  }
  [[nodiscard]] bool operator==(const EriClassKey& o) const {
    return tie() == o.tie();
  }

  [[nodiscard]] int lab() const noexcept { return la + lb; }
  [[nodiscard]] int lcd() const noexcept { return lc + ld; }
  [[nodiscard]] int ltot() const noexcept { return lab() + lcd(); }

  [[nodiscard]] int nherm_bra() const noexcept { return nherm(lab()); }
  [[nodiscard]] int nherm_ket() const noexcept { return nherm(lcd()); }
  [[nodiscard]] int ncart_bra() const noexcept { return ncart(la) * ncart(lb); }
  [[nodiscard]] int ncart_ket() const noexcept { return ncart(lc) * ncart(ld); }
  [[nodiscard]] int nsph_bra() const noexcept { return nsph(la) * nsph(lb); }
  [[nodiscard]] int nsph_ket() const noexcept { return nsph(lc) * nsph(ld); }

  /// Human-readable name, e.g. "(dd|pp) K{1,5}".
  [[nodiscard]] std::string name() const;

  // FLOP split of the Eq.-7 basis-transformation GEMMs for one quartet:
  // GEMM1 runs kab*kcd times, GEMM2 kcd times (Algorithm 1).
  [[nodiscard]] double gemm1_flops() const noexcept {
    return 2.0 * static_cast<double>(ncart_bra()) * nherm_ket() * nherm_bra() *
           kab * kcd;
  }
  [[nodiscard]] double gemm2_flops() const noexcept {
    return 2.0 * static_cast<double>(ncart_bra()) * ncart_ket() * nherm_ket() *
           kcd;
  }
  [[nodiscard]] double gemm_flops_per_quartet() const noexcept {
    return gemm1_flops() + gemm2_flops();
  }
};

}  // namespace mako
