// Batch-persistent ERI execution plans (CompilerMako's static planning,
// Section 3.3, realized as data).
//
// Every quartet of one ERI class follows the same static execution pattern:
// identical intermediate shapes, identical Hermite index algebra, identical
// spherical transforms.  An EriClassPlan bakes all of that class-static state
// once — the (-1)^{|q~|} sign table, the combined Hermite index table of
// Eq. 6, the cart->sph pair transforms — and is cached process-wide, so
// BatchedEriEngine::compute_batch does no per-batch table rebuilding.
//
// EriScratch is the companion per-thread workspace arena: every working
// buffer of a batch execution lives here and is reused across batches, which
// makes the steady-state hot path allocation-free (asserted by the
// allocation-count test).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "integrals/hermite.hpp"
#include "kernelmako/eri_class.hpp"
#include "linalg/matrix.hpp"

namespace mako {

/// Immutable per-class execution plan, shared across engines and threads.
class EriClassPlan {
 public:
  explicit EriClassPlan(const EriClassKey& key);

  /// Shorthand for EriPlanCache::process().get(key) — the process-wide cache.
  static const EriClassPlan& get(const EriClassKey& key);

  /// Number of distinct plans in the process-wide cache.
  static std::size_t cache_size();

  [[nodiscard]] const EriClassKey& key() const noexcept { return key_; }

  // Cached dimensions (all derivable from the key; cached to keep the hot
  // loop free of recomputation).
  int nhb = 0;   ///< Hermite components of the bra pair
  int nhk = 0;   ///< Hermite components of the ket pair
  int nht = 0;   ///< Hermite components of the total order
  int ncb = 0;   ///< Cartesian pair size, bra
  int nck = 0;   ///< Cartesian pair size, ket
  int nsb = 0;   ///< spherical pair size, bra
  int nsk = 0;   ///< spherical pair size, ket
  int ltot = 0;  ///< total angular momentum

  /// (-1)^{|q~|} per ket Hermite component (Eq. 6).
  std::vector<double> sign_cd;
  /// combined[hp * nhk + hq] = total-order Hermite index of p~+q~.
  std::vector<int> combined;

  /// Cart->sph pair transform of the bra, [nsb x ncb] (borrowed from the
  /// process-wide spherical cache; stable for the program lifetime).
  const MatrixD* sph_bra = nullptr;
  /// Cart->sph pair transform of the ket, [nsk x nck].
  const MatrixD* sph_ket = nullptr;

 private:
  EriClassKey key_;
};

/// Cache of EriClassPlan instances, keyed by ERI class.  Plans are built on
/// first lookup, never evicted (they are small and class-static), and handed
/// out by stable reference.  Thread-safe; lookups after first construction
/// are allocation-free.
///
/// ExecutionContext owns the cache used by a run (normally the process-wide
/// instance so tuned plans are shared across engines); isolated instances
/// exist for tests that need cache-size determinism.
class EriPlanCache {
 public:
  EriPlanCache() = default;
  EriPlanCache(const EriPlanCache&) = delete;
  EriPlanCache& operator=(const EriPlanCache&) = delete;

  /// The process-wide cache (leaky singleton).
  static EriPlanCache& process();

  const EriClassPlan& get(const EriClassKey& key);
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<EriClassKey, std::unique_ptr<EriClassPlan>> plans_;
};

/// Reusable working-buffer arena for one thread's batch executions.  Buffers
/// grow to the high-water mark of the classes seen and are never shrunk;
/// after warm-up, compute_batch performs zero heap allocations.
struct EriScratch {
  // Per-quartet primitive-pair tables, flat [nq * kab] / [nq * kcd].
  std::vector<PrimPair> bra_pairs, ket_pairs;
  // E operand arenas: bra_e stores E_AB row-major [nhb x ncb] per (q, jp)
  // (consumed through the GEMM's native transpose — never copied), ket_e
  // stores E_CD row-major [nhk x nck] per (q, kp).
  std::vector<double> bra_e, ket_e;
  // Quantized-operand caches: the E arenas rounded to the kernel precision
  // once per batch instead of once per GEMM call.
  std::vector<float> q_bra, q_ket, q_dyn;
  // r-integral staging, [p~|q~] assembly, and transform intermediates.
  std::vector<double> r_striped, r_blocked, r_tmp, abq, cart, pq_one, pq_all,
      sph_tmp;
  MatrixD e_tmp;  ///< build_e_matrix staging
};

}  // namespace mako
