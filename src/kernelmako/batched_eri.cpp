#include "kernelmako/batched_eri.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "basis/spherical.hpp"
#include "integrals/hermite.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "robust/fault_injector.hpp"
#include "util/timer.hpp"

namespace mako {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Striped -> blocked conversion of the batch r-integral tensor.
/// striped[h * nq + q] -> blocked[q * nh + h].
///
/// The swizzled variant stages 32x32 tiles through a TileBuffer using the
/// XOR layout of Eq. 10: rows are written in striped order and columns read
/// in blocked order, both conflict-free — this is the in-SMEM transpose of
/// Section 3.1.2.  The naive variant models the direct strided gather.
void striped_to_blocked(const double* striped, double* blocked, std::size_t nh,
                        std::size_t nq, bool use_swizzle) {
  if (!use_swizzle) {
    for (std::size_t h = 0; h < nh; ++h) {
      for (std::size_t q = 0; q < nq; ++q) {
        blocked[q * nh + h] = striped[h * nq + q];
      }
    }
    return;
  }

  // Tiled transpose through a swizzled 32x32 staging tile.  The XOR column
  // mapping (Eq. 10) is applied inline; on the host this doubles as a
  // cache-blocked transpose, on the modeled device it is the conflict-free
  // in-SMEM layout conversion (verified separately via TileBuffer).
  constexpr std::size_t kTile = 32;
  double tile[kTile * kTile];
  for (std::size_t h0 = 0; h0 < nh; h0 += kTile) {
    const std::size_t hN = std::min(kTile, nh - h0);
    for (std::size_t q0 = 0; q0 < nq; q0 += kTile) {
      const std::size_t qN = std::min(kTile, nq - q0);
      // Coalesced load: lanes sweep q for each h row; store swizzled.
      for (std::size_t h = 0; h < hN; ++h) {
        const double* src = striped + (h0 + h) * nq + q0;
        double* row = tile + h * kTile;
        for (std::size_t q = 0; q < qN; ++q) row[q ^ h] = src[q];
      }
      // Conflict-free transposed read: lanes sweep h for each q.
      for (std::size_t q = 0; q < qN; ++q) {
        double* dst = blocked + (q0 + q) * nh + h0;
        for (std::size_t h = 0; h < hN; ++h) dst[h] = tile[h * kTile + (q ^ h)];
      }
    }
  }
}

/// Builds the [p~|q~] matrix (Eq. 6) of one quartet from its blocked
/// r-integrals: pq(hp, hq) = (-1)^{|q~|} R_{p~+q~}, optionally scaled.
void assemble_pq(const double* r, const int* combined, const double* sign_cd,
                 int nhb, int nhk, double scale, double* pq) {
  for (int hp = 0; hp < nhb; ++hp) {
    const int* comb = combined + static_cast<std::size_t>(hp) * nhk;
    double* row = pq + static_cast<std::size_t>(hp) * nhk;
    for (int hq = 0; hq < nhk; ++hq) {
      row[hq] = scale * sign_cd[hq] * r[comb[hq]];
    }
  }
}

double max_abs(const double* p, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

}  // namespace

EriClassKey BatchedEriEngine::classify(const QuartetRef& q) {
  EriClassKey key;
  key.la = q.a->l;
  key.lb = q.b->l;
  key.lc = q.c->l;
  key.ld = q.d->l;
  key.kab = q.a->nprim() * q.b->nprim();
  key.kcd = q.c->nprim() * q.d->nprim();
  return key;
}

const GemmBackend& BatchedEriEngine::backend() const {
  return backend_ != nullptr
             ? *backend_
             : resolve_gemm_backend(GemmBackendRegistry::kDefaultName);
}

BatchStats BatchedEriEngine::compute_batch(
    const EriClassKey& key, std::span<const QuartetRef> batch,
    std::vector<std::vector<double>>& out) const {
  static thread_local EriScratch scratch;
  EriPlanCache& plans =
      plans_ != nullptr ? *plans_ : EriPlanCache::process();
  return compute_batch(plans.get(key), batch, out, scratch);
}

BatchStats BatchedEriEngine::compute_batch(
    const EriClassPlan& plan, std::span<const QuartetRef> batch,
    std::vector<std::vector<double>>& out, EriScratch& scratch,
    bool verify_class) const {
  Timer timer;
  BatchStats stats;
  const EriClassKey& key = plan.key();
  const std::size_t nq = batch.size();
  out.resize(nq);
  if (nq == 0) return stats;

  obs::TraceSpan span(obs::TraceCat::kKernel, "kernelmako.batch");
  if (span.active()) {
    char args[96];
    std::snprintf(args, sizeof args,
                  "\"class\":\"(%d%d|%d%d)\",\"quartets\":%zu", key.la, key.lb,
                  key.lc, key.ld, nq);
    span.set_args(args);
  }
  MAKO_METRIC_COUNT("kernel.batches", 1);
  MAKO_METRIC_COUNT("kernel.quartets",
                    static_cast<std::int64_t>(nq));

  const int nhb = plan.nhb;
  const int nhk = plan.nhk;
  const int ncb = plan.ncb;
  const int nck = plan.nck;
  const int nht = plan.nht;
  const int ltot = plan.ltot;
  const std::size_t kab = static_cast<std::size_t>(key.kab);
  const std::size_t kcd = static_cast<std::size_t>(key.kcd);

  // --- Per-quartet primitive pairs and E operands into the arena ------------
  const std::size_t e_bra_sz = static_cast<std::size_t>(nhb) * ncb;
  const std::size_t e_ket_sz = static_cast<std::size_t>(nhk) * nck;
  scratch.bra_pairs.resize(nq * kab);
  scratch.ket_pairs.resize(nq * kcd);
  scratch.bra_e.resize(nq * kab * e_bra_sz);
  scratch.ket_e.resize(nq * kcd * e_ket_sz);
  if (verify_class) {
    for (const QuartetRef& ref : batch) {
      if (ref.a->l != key.la || ref.b->l != key.lb || ref.c->l != key.lc ||
          ref.d->l != key.ld) {
        throw std::invalid_argument("compute_batch: heterogeneous batch");
      }
      if (ref.a->nprim() * ref.b->nprim() != key.kab ||
          ref.c->nprim() * ref.d->nprim() != key.kcd) {
        throw std::invalid_argument(
            "compute_batch: contraction degree mismatch with class key");
      }
    }
  }
  for (std::size_t q = 0; q < nq; ++q) {
    const QuartetRef& ref = batch[q];
    make_prim_pairs(ref.a->center, ref.a->exponents, ref.a->coefficients,
                    ref.b->center, ref.b->exponents, ref.b->coefficients,
                    scratch.bra_pairs.data() + q * kab);
    make_prim_pairs(ref.c->center, ref.c->exponents, ref.c->coefficients,
                    ref.d->center, ref.d->exponents, ref.d->coefficients,
                    scratch.ket_pairs.data() + q * kcd);
    for (std::size_t jp = 0; jp < kab; ++jp) {
      const PrimPair& pp = scratch.bra_pairs[q * kab + jp];
      // E_AB stays in its natural [nhb x ncb] layout; GEMM1 consumes it
      // through the packed kernel's native transpose (no copies).
      build_e_matrix(key.la, key.lb, ref.a->center, ref.b->center, pp.alpha,
                     pp.beta, pp.coef, scratch.e_tmp);
      std::copy(scratch.e_tmp.data(), scratch.e_tmp.data() + e_bra_sz,
                scratch.bra_e.data() + (q * kab + jp) * e_bra_sz);
    }
    for (std::size_t kp = 0; kp < kcd; ++kp) {
      const PrimPair& pp = scratch.ket_pairs[q * kcd + kp];
      build_e_matrix(key.lc, key.ld, ref.c->center, ref.d->center, pp.alpha,
                     pp.beta, pp.coef, scratch.e_tmp);
      std::copy(scratch.e_tmp.data(), scratch.e_tmp.data() + e_ket_sz,
                scratch.ket_e.data() + (q * kcd + kp) * e_ket_sz);
    }
  }

  // --- Group scaling for quantized execution (Section 3.2.1) ----------------
  // Scales are per class & per operand group; dequantization happens at the
  // FP32->FP64 widening of each GEMM (dual-stage accumulation).
  // Quantized execution needs the backend's reduced-precision datapath; on a
  // backend without it every transform GEMM runs exact FP64 instead.
  const GemmBackend& be = backend();
  const bool quant = config_.quantized() && be.capabilities().quantized;
  double s_bra = 1.0, s_ket = 1.0;
  if (quant && config_.group_scaling) {
    const double m_bra = max_abs(scratch.bra_e.data(), scratch.bra_e.size());
    const double m_ket = max_abs(scratch.ket_e.data(), scratch.ket_e.size());
    if (m_bra > 0.0) s_bra = 1.0 / m_bra;
    if (m_ket > 0.0) s_ket = 1.0 / m_ket;
    for (double& v : scratch.bra_e) v *= s_bra;
    for (double& v : scratch.ket_e) v *= s_ket;
  }

  const GemmConfig& gc = config_.gemm;
  const bool naive_fp16 = quant && gc.precision == Precision::kFP16 &&
                          !config_.dual_stage_accumulation;

  // --- Quantized-operand cache ----------------------------------------------
  // The E operands are invariant across the batch: round them to the kernel
  // precision once here, instead of once per GEMM call inside the loops.
  const bool use_qcache = quant && !naive_fp16;
  if (use_qcache) {
    scratch.q_bra.resize(scratch.bra_e.size());
    scratch.q_ket.resize(scratch.ket_e.size());
    quantize_to_float(scratch.bra_e.data(), scratch.q_bra.data(),
                      scratch.bra_e.size(), gc.precision);
    quantize_to_float(scratch.ket_e.data(), scratch.q_ket.data(),
                      scratch.ket_e.size(), gc.precision);
    scratch.q_dyn.resize(std::max(static_cast<std::size_t>(nhb) * nhk,
                                  static_cast<std::size_t>(ncb) * nhk));
    // Injection site: corrupt one element of the quantized bra E-operand
    // cache (models a faulty tensor-core operand tile).  The corruption flows
    // through GEMM1 into every quartet sharing the tile, exactly the blast
    // radius a real bad tile would have.
    if (MAKO_FAULT_POINT("kernelmako.quant_e_tile")) {
      FaultInjector::instance().corrupt("kernelmako.quant_e_tile",
                                        scratch.q_bra.data(),
                                        scratch.q_bra.size());
    }
  }

  // --- Working buffers (arena-backed; no steady-state allocation) -----------
  const std::size_t abq_stride = static_cast<std::size_t>(ncb) * nhk;
  const std::size_t cart_stride = static_cast<std::size_t>(ncb) * nck;
  scratch.r_striped.resize(static_cast<std::size_t>(nht) * nq);
  scratch.r_blocked.resize(scratch.r_striped.size());
  scratch.r_tmp.resize(nht);
  scratch.abq.resize(nq * abq_stride);
  scratch.cart.assign(nq * cart_stride, 0.0);
  scratch.pq_one.resize(static_cast<std::size_t>(nhb) * nhk);
  // Unfused mode stages every quartet's [p~|q~] through "global memory".
  const bool fully_fused =
      config_.fuse_gemms && key.kab == 1 && key.kcd == 1;
  const bool stage_pq_globally = !config_.fuse_gemms;
  if (stage_pq_globally) scratch.pq_all.resize(nq * scratch.pq_one.size());

  // GEMM1 dispatch: C[ncb x nhk] += alpha * E_AB^T x [p~|q~].  The bra
  // operand enters through the native transpose; the quantized route reads
  // the batch-persistent operand cache.
  auto run_gemm1 = [&](std::size_t q, std::size_t jp, const double* pq,
                       double* c, double alpha) {
    const double* ea = scratch.bra_e.data() + (q * kab + jp) * e_bra_sz;
    if (naive_fp16) {
      be.fp16_baseline(ea, pq, c, ncb, nhk, nhb, alpha, 1.0, /*trans_a=*/true);
    } else if (quant) {
      quantize_to_float(pq, scratch.q_dyn.data(),
                        static_cast<std::size_t>(nhb) * nhk, gc.precision);
      be.mixed(scratch.q_bra.data() + (q * kab + jp) * e_bra_sz,
               /*trans_a=*/true, scratch.q_dyn.data(), false, c, ncb, nhk, nhb,
               alpha, 1.0, gc);
    } else {
      be.fp64(ea, /*trans_a=*/true, pq, false, c, ncb, nhk, nhb, alpha, 1.0,
              gc);
    }
    stats.gemm_flops += gemm_flops(ncb, nhk, nhb);
  };

  // GEMM2 dispatch: C[ncb x nck] += alpha * (ab|q~] x E_CD.
  auto run_gemm2 = [&](std::size_t q, std::size_t kp, const double* abq_slice,
                       double* c, double alpha) {
    const double* ek = scratch.ket_e.data() + (q * kcd + kp) * e_ket_sz;
    if (naive_fp16) {
      be.fp16_baseline(abq_slice, ek, c, ncb, nck, nhk, alpha, 1.0);
    } else if (quant) {
      quantize_to_float(abq_slice, scratch.q_dyn.data(), abq_stride,
                        gc.precision);
      be.mixed(scratch.q_dyn.data(), false,
               scratch.q_ket.data() + (q * kcd + kp) * e_ket_sz, false, c, ncb,
               nck, nhk, alpha, 1.0, gc);
    } else {
      be.fp64(abq_slice, false, ek, false, c, ncb, nck, nhk, alpha, 1.0, gc);
    }
    stats.gemm_flops += gemm_flops(ncb, nck, nhk);
  };

  for (std::size_t kp = 0; kp < kcd; ++kp) {
    // (ab|q~] accumulates bra primitive pairs for this ket pair only.
    std::fill(scratch.abq.begin(), scratch.abq.end(), 0.0);
    for (std::size_t jp = 0; jp < kab; ++jp) {
      // Stage 1: r-integrals, produced striped (quartet-fastest), the order
      // a quartet-per-thread kernel writes coalesced.
      for (std::size_t q = 0; q < nq; ++q) {
        const PrimPair& bra = scratch.bra_pairs[q * kab + jp];
        const PrimPair& ket = scratch.ket_pairs[q * kcd + kp];
        const double denom = bra.p * ket.p * std::sqrt(bra.p + ket.p);
        const double pref = 2.0 * std::pow(kPi, 2.5) / denom;
        const double alpha_rq = bra.p * ket.p / (bra.p + ket.p);
        const Vec3 pq_vec{bra.center[0] - ket.center[0],
                          bra.center[1] - ket.center[1],
                          bra.center[2] - ket.center[2]};
        compute_r_integrals(ltot, alpha_rq, pq_vec, pref,
                            scratch.r_tmp.data());
        for (int h = 0; h < nht; ++h) {
          scratch.r_striped[static_cast<std::size_t>(h) * nq + q] =
              scratch.r_tmp[h];
        }
      }
      stats.scalar_flops += static_cast<double>(nq) * nht * (ltot + 2) * 4.0;
      stats.global_bytes += 8.0 * nq * nht;
      stats.kernel_launches += 1;

      // Stage 2: layout conversion (swizzled in-SMEM transpose vs explicit
      // global transpose — the latter costs an extra kernel + traffic).
      striped_to_blocked(scratch.r_striped.data(), scratch.r_blocked.data(),
                         nht, nq, config_.use_swizzle);
      if (!config_.use_swizzle) {
        stats.global_bytes += 16.0 * nq * nht;
        stats.kernel_launches += 1;
      }

      // Quantized pq scale for this primitive-pair slice.
      double s_pq = 1.0;
      if (quant && config_.group_scaling) {
        const double m =
            max_abs(scratch.r_blocked.data(), scratch.r_blocked.size());
        if (m > 0.0) s_pq = 1.0 / m;
      }
      const double dequant = 1.0 / (s_pq * s_bra);

      // Stage 3: pq assembly + GEMM1 (Eq. 7 first transform).
      if (stage_pq_globally) {
        // Unfused: one kernel writes all [p~|q~] to global memory...
        for (std::size_t q = 0; q < nq; ++q) {
          assemble_pq(scratch.r_blocked.data() + q * nht, plan.combined.data(),
                      plan.sign_cd.data(), nhb, nhk, s_pq,
                      scratch.pq_all.data() + q * scratch.pq_one.size());
        }
        stats.global_bytes +=
            2.0 * static_cast<double>(bytes_per_element(gc.precision)) * nq *
            scratch.pq_one.size();
        stats.kernel_launches += 1;
        // ... and a second kernel runs the batched GEMM over them.
        for (std::size_t q = 0; q < nq; ++q) {
          run_gemm1(q, jp, scratch.pq_all.data() + q * scratch.pq_one.size(),
                    scratch.abq.data() + q * abq_stride,
                    quant ? dequant : 1.0);
        }
        stats.kernel_launches += 1;
      } else {
        // Fused: assembly feeds the GEMM while the tile is hot.
        for (std::size_t q = 0; q < nq; ++q) {
          assemble_pq(scratch.r_blocked.data() + q * nht, plan.combined.data(),
                      plan.sign_cd.data(), nhb, nhk, s_pq,
                      scratch.pq_one.data());
          run_gemm1(q, jp, scratch.pq_one.data(),
                    scratch.abq.data() + q * abq_stride,
                    quant ? dequant : 1.0);
          if (fully_fused) {
            // GEMM coalescing (Eq. 11): consume (ab|q~] immediately.
            double* slice = scratch.abq.data() + q * abq_stride;
            double s_abq = 1.0;
            if (quant && config_.group_scaling) {
              const double m = max_abs(slice, abq_stride);
              if (m > 0.0) s_abq = 1.0 / m;
              for (std::size_t i = 0; i < abq_stride; ++i) slice[i] *= s_abq;
            }
            run_gemm2(q, kp, slice, scratch.cart.data() + q * cart_stride,
                      quant ? 1.0 / (s_ket * s_abq) : 1.0);
          }
        }
        stats.kernel_launches += 1;
      }
      stats.scalar_flops += 2.0 * nq * nhb * nhk;
    }

    // Stage 4: GEMM2 (Eq. 7 second transform), skipped when coalesced above.
    if (!fully_fused) {
      double s_abq = 1.0;
      if (quant && config_.group_scaling) {
        const double m = max_abs(scratch.abq.data(), scratch.abq.size());
        if (m > 0.0) s_abq = 1.0 / m;
        for (double& v : scratch.abq) v *= s_abq;
      }
      for (std::size_t q = 0; q < nq; ++q) {
        run_gemm2(q, kp, scratch.abq.data() + q * abq_stride,
                  scratch.cart.data() + q * cart_stride,
                  quant ? 1.0 / (s_ket * s_abq) : 1.0);
      }
      stats.global_bytes += static_cast<double>(quant ? 4 : 8) * nq *
                             (abq_stride + cart_stride);
      stats.kernel_launches += 1;
    }
  }

  // Stage 5: Cartesian -> spherical, two batched GEMMs.  The transform
  // matrices come from the class plan; the ket side runs through the native
  // transpose instead of a materialized copy.
  const int nsb = plan.nsb;
  const int nsk = plan.nsk;
  scratch.sph_tmp.resize(static_cast<std::size_t>(nsb) * nck);
  for (std::size_t q = 0; q < nq; ++q) {
    out[q].assign(static_cast<std::size_t>(nsb) * nsk, 0.0);
    be.fp64(plan.sph_bra->data(), false,
            scratch.cart.data() + q * cart_stride, false,
            scratch.sph_tmp.data(), nsb, nck, ncb, 1.0, 0.0, gc);
    be.fp64(scratch.sph_tmp.data(), false, plan.sph_ket->data(),
            /*trans_b=*/true, out[q].data(), nsb, nsk, nck, 1.0, 0.0, gc);
    stats.gemm_flops += gemm_flops(nsb, nck, ncb) + gemm_flops(nsb, nsk, nck);
  }
  stats.kernel_launches += 2;
  stats.global_bytes += 8.0 * nq * (cart_stride + nsb * nsk);

  stats.wall_seconds = timer.seconds();
  MAKO_METRIC_OBSERVE("kernel.batch_s", stats.wall_seconds);
  return stats;
}

}  // namespace mako
