#include "kernelmako/batched_eri.hpp"

#include <cmath>
#include <stdexcept>

#include "basis/spherical.hpp"
#include "integrals/hermite.hpp"
#include "util/timer.hpp"

namespace mako {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Striped -> blocked conversion of the batch r-integral tensor.
/// striped[h * nq + q] -> blocked[q * nh + h].
///
/// The swizzled variant stages 32x32 tiles through a TileBuffer using the
/// XOR layout of Eq. 10: rows are written in striped order and columns read
/// in blocked order, both conflict-free — this is the in-SMEM transpose of
/// Section 3.1.2.  The naive variant models the direct strided gather.
void striped_to_blocked(const double* striped, double* blocked, std::size_t nh,
                        std::size_t nq, bool use_swizzle) {
  if (!use_swizzle) {
    for (std::size_t h = 0; h < nh; ++h) {
      for (std::size_t q = 0; q < nq; ++q) {
        blocked[q * nh + h] = striped[h * nq + q];
      }
    }
    return;
  }

  // Tiled transpose through a swizzled 32x32 staging tile.  The XOR column
  // mapping (Eq. 10) is applied inline; on the host this doubles as a
  // cache-blocked transpose, on the modeled device it is the conflict-free
  // in-SMEM layout conversion (verified separately via TileBuffer).
  constexpr std::size_t kTile = 32;
  double tile[kTile * kTile];
  for (std::size_t h0 = 0; h0 < nh; h0 += kTile) {
    const std::size_t hN = std::min(kTile, nh - h0);
    for (std::size_t q0 = 0; q0 < nq; q0 += kTile) {
      const std::size_t qN = std::min(kTile, nq - q0);
      // Coalesced load: lanes sweep q for each h row; store swizzled.
      for (std::size_t h = 0; h < hN; ++h) {
        const double* src = striped + (h0 + h) * nq + q0;
        double* row = tile + h * kTile;
        for (std::size_t q = 0; q < qN; ++q) row[q ^ h] = src[q];
      }
      // Conflict-free transposed read: lanes sweep h for each q.
      for (std::size_t q = 0; q < qN; ++q) {
        double* dst = blocked + (q0 + q) * nh + h0;
        for (std::size_t h = 0; h < hN; ++h) dst[h] = tile[h * kTile + (q ^ h)];
      }
    }
  }
}

/// Builds the [p~|q~] matrix (Eq. 6) of one quartet from its blocked
/// r-integrals: pq(hp, hq) = (-1)^{|q~|} R_{p~+q~}, optionally scaled.
void assemble_pq(const double* r, const int* combined, const double* sign_cd,
                 int nhb, int nhk, double scale, double* pq) {
  for (int hp = 0; hp < nhb; ++hp) {
    const int* comb = combined + static_cast<std::size_t>(hp) * nhk;
    double* row = pq + static_cast<std::size_t>(hp) * nhk;
    for (int hq = 0; hq < nhk; ++hq) {
      row[hq] = scale * sign_cd[hq] * r[comb[hq]];
    }
  }
}

double max_abs(const double* p, std::size_t n) {
  double m = 0.0;
  for (std::size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(p[i]));
  return m;
}

}  // namespace

EriClassKey BatchedEriEngine::classify(const QuartetRef& q) {
  EriClassKey key;
  key.la = q.a->l;
  key.lb = q.b->l;
  key.lc = q.c->l;
  key.ld = q.d->l;
  key.kab = q.a->nprim() * q.b->nprim();
  key.kcd = q.c->nprim() * q.d->nprim();
  return key;
}

BatchStats BatchedEriEngine::compute_batch(
    const EriClassKey& key, std::span<const QuartetRef> batch,
    std::vector<std::vector<double>>& out) const {
  Timer timer;
  BatchStats stats;
  const std::size_t nq = batch.size();
  out.resize(nq);
  if (nq == 0) return stats;

  const int nhb = key.nherm_bra();
  const int nhk = key.nherm_ket();
  const int ncb = key.ncart_bra();
  const int nck = key.ncart_ket();
  const int ltot = key.ltot();
  const HermiteBasis& hb_ab = HermiteBasis::get(key.lab());
  const HermiteBasis& hb_cd = HermiteBasis::get(key.lcd());
  const HermiteBasis& hb_tot = HermiteBasis::get(ltot);
  const int nht = hb_tot.size();

  // Class-static tables (CompilerMako would bake these into the kernel).
  std::vector<double> sign_cd(nhk);
  for (int h = 0; h < nhk; ++h) {
    const auto& q = hb_cd.component(h);
    sign_cd[h] = ((q[0] + q[1] + q[2]) % 2 == 0) ? 1.0 : -1.0;
  }
  std::vector<int> combined(static_cast<std::size_t>(nhb) * nhk);
  for (int hp = 0; hp < nhb; ++hp) {
    const auto& p = hb_ab.component(hp);
    for (int hq = 0; hq < nhk; ++hq) {
      const auto& q = hb_cd.component(hq);
      combined[static_cast<std::size_t>(hp) * nhk + hq] =
          hb_tot.index(p[0] + q[0], p[1] + q[1], p[2] + q[2]);
    }
  }

  // --- Precompute per-quartet primitive pairs and E operands ---------------
  std::vector<std::vector<PrimPair>> bra_pairs(nq), ket_pairs(nq);
  // braET[q * kab + jp]: (ncb x nhb); ketE[q * kcd + kp]: (nhk x nck).
  std::vector<MatrixD> bra_et(nq * key.kab), ket_e(nq * key.kcd);
  {
    MatrixD scratch;
    for (std::size_t q = 0; q < nq; ++q) {
      const QuartetRef& ref = batch[q];
      if (ref.a->l != key.la || ref.b->l != key.lb || ref.c->l != key.lc ||
          ref.d->l != key.ld) {
        throw std::invalid_argument("compute_batch: heterogeneous batch");
      }
      bra_pairs[q] =
          make_prim_pairs(ref.a->center, ref.a->exponents, ref.a->coefficients,
                          ref.b->center, ref.b->exponents, ref.b->coefficients);
      ket_pairs[q] =
          make_prim_pairs(ref.c->center, ref.c->exponents, ref.c->coefficients,
                          ref.d->center, ref.d->exponents, ref.d->coefficients);
      if (static_cast<int>(bra_pairs[q].size()) != key.kab ||
          static_cast<int>(ket_pairs[q].size()) != key.kcd) {
        throw std::invalid_argument(
            "compute_batch: contraction degree mismatch with class key");
      }
      for (int jp = 0; jp < key.kab; ++jp) {
        const PrimPair& pp = bra_pairs[q][jp];
        build_e_matrix(key.la, key.lb, ref.a->center, ref.b->center, pp.alpha,
                       pp.beta, pp.coef, scratch);
        bra_et[q * key.kab + jp] = scratch.transposed();
      }
      for (int kp = 0; kp < key.kcd; ++kp) {
        const PrimPair& pp = ket_pairs[q][kp];
        build_e_matrix(key.lc, key.ld, ref.c->center, ref.d->center, pp.alpha,
                       pp.beta, pp.coef, ket_e[q * key.kcd + kp]);
      }
    }
  }

  // --- Group scaling for quantized execution (Section 3.2.1) ---------------
  // Scales are per class & per operand group; dequantization happens at the
  // FP32->FP64 widening of each GEMM (dual-stage accumulation).
  const bool quant = config_.quantized();
  double s_bra = 1.0, s_ket = 1.0;
  if (quant && config_.group_scaling) {
    double m_bra = 0.0, m_ket = 0.0;
    for (const auto& m : bra_et) m_bra = std::max(m_bra, max_abs(m.data(), m.size()));
    for (const auto& m : ket_e) m_ket = std::max(m_ket, max_abs(m.data(), m.size()));
    if (m_bra > 0.0) s_bra = 1.0 / m_bra;
    if (m_ket > 0.0) s_ket = 1.0 / m_ket;
    for (auto& m : bra_et) m *= s_bra;
    for (auto& m : ket_e) m *= s_ket;
  }

  // --- Working buffers ------------------------------------------------------
  std::vector<double> r_striped(static_cast<std::size_t>(nht) * nq);
  std::vector<double> r_blocked(r_striped.size());
  std::vector<double> r_tmp(nht);
  std::vector<double> abq(nq * static_cast<std::size_t>(ncb) * nhk, 0.0);
  std::vector<double> cart(nq * static_cast<std::size_t>(ncb) * nck, 0.0);
  std::vector<double> pq_one(static_cast<std::size_t>(nhb) * nhk);
  // Unfused mode stages every quartet's [p~|q~] through "global memory".
  std::vector<double> pq_all;
  const bool fully_fused =
      config_.fuse_gemms && key.kab == 1 && key.kcd == 1;
  const bool stage_pq_globally = !config_.fuse_gemms;
  if (stage_pq_globally) pq_all.resize(nq * pq_one.size());

  const GemmConfig& gc = config_.gemm;
  const bool naive_fp16 = quant && gc.precision == Precision::kFP16 &&
                          !config_.dual_stage_accumulation;
  auto run_gemm = [&](const double* a, const double* b, double* c, int m,
                      int n, int k, double alpha, double beta) {
    if (naive_fp16) {
      gemm_fp16_naive(a, b, c, m, n, k, alpha, beta);
    } else if (quant) {
      gemm_quantized(a, b, c, m, n, k, alpha, beta, gc);
    } else {
      gemm_fp64(a, b, c, m, n, k, alpha, beta, gc);
    }
    stats.gemm_flops += gemm_flops(m, n, k);
  };

  const std::size_t abq_stride = static_cast<std::size_t>(ncb) * nhk;
  const std::size_t cart_stride = static_cast<std::size_t>(ncb) * nck;

  for (int kp = 0; kp < key.kcd; ++kp) {
    if (key.kcd > 1 || kp == 0) {
      std::fill(abq.begin(), abq.end(), 0.0);
    }
    for (int jp = 0; jp < key.kab; ++jp) {
      // Stage 1: r-integrals, produced striped (quartet-fastest), the order
      // a quartet-per-thread kernel writes coalesced.
      for (std::size_t q = 0; q < nq; ++q) {
        const PrimPair& bra = bra_pairs[q][jp];
        const PrimPair& ket = ket_pairs[q][kp];
        const double denom = bra.p * ket.p * std::sqrt(bra.p + ket.p);
        const double pref = 2.0 * std::pow(kPi, 2.5) / denom;
        const double alpha_rq = bra.p * ket.p / (bra.p + ket.p);
        const Vec3 pq_vec{bra.center[0] - ket.center[0],
                          bra.center[1] - ket.center[1],
                          bra.center[2] - ket.center[2]};
        compute_r_integrals(ltot, alpha_rq, pq_vec, pref, r_tmp.data());
        for (int h = 0; h < nht; ++h) {
          r_striped[static_cast<std::size_t>(h) * nq + q] = r_tmp[h];
        }
      }
      stats.scalar_flops += static_cast<double>(nq) * nht * (ltot + 2) * 4.0;
      stats.global_bytes += 8.0 * nq * nht;
      stats.kernel_launches += 1;

      // Stage 2: layout conversion (swizzled in-SMEM transpose vs explicit
      // global transpose — the latter costs an extra kernel + traffic).
      striped_to_blocked(r_striped.data(), r_blocked.data(), nht, nq,
                         config_.use_swizzle);
      if (!config_.use_swizzle) {
        stats.global_bytes += 16.0 * nq * nht;
        stats.kernel_launches += 1;
      }

      // Quantized pq scale for this primitive-pair slice.
      double s_pq = 1.0;
      if (quant && config_.group_scaling) {
        const double m = max_abs(r_blocked.data(), r_blocked.size());
        if (m > 0.0) s_pq = 1.0 / m;
      }
      const double dequant = 1.0 / (s_pq * s_bra);

      // Stage 3: pq assembly + GEMM1 (Eq. 7 first transform).
      if (stage_pq_globally) {
        // Unfused: one kernel writes all [p~|q~] to global memory...
        for (std::size_t q = 0; q < nq; ++q) {
          assemble_pq(r_blocked.data() + q * nht, combined.data(),
                      sign_cd.data(), nhb, nhk, s_pq,
                      pq_all.data() + q * pq_one.size());
        }
        stats.global_bytes += 2.0 * static_cast<double>(bytes_per_element(gc.precision)) *
            nq * pq_one.size();
        stats.kernel_launches += 1;
        // ... and a second kernel runs the batched GEMM over them.
        for (std::size_t q = 0; q < nq; ++q) {
          run_gemm(bra_et[q * key.kab + jp].data(),
                   pq_all.data() + q * pq_one.size(),
                   abq.data() + q * abq_stride, ncb, nhk, nhb,
                   quant ? dequant : 1.0, 1.0);
        }
        stats.kernel_launches += 1;
      } else {
        // Fused: assembly feeds the GEMM while the tile is hot.
        for (std::size_t q = 0; q < nq; ++q) {
          assemble_pq(r_blocked.data() + q * nht, combined.data(),
                      sign_cd.data(), nhb, nhk, s_pq, pq_one.data());
          run_gemm(bra_et[q * key.kab + jp].data(), pq_one.data(),
                   abq.data() + q * abq_stride, ncb, nhk, nhb,
                   quant ? dequant : 1.0, 1.0);
          if (fully_fused) {
            // GEMM coalescing (Eq. 11): consume (ab|q~] immediately.
            double* slice = abq.data() + q * abq_stride;
            double s_abq = 1.0;
            if (quant && config_.group_scaling) {
              const double m = max_abs(slice, abq_stride);
              if (m > 0.0) s_abq = 1.0 / m;
              for (std::size_t i = 0; i < abq_stride; ++i) slice[i] *= s_abq;
            }
            run_gemm(slice, ket_e[q * key.kcd + kp].data(),
                     cart.data() + q * cart_stride, ncb, nck, nhk,
                     quant ? 1.0 / (s_ket * s_abq) : 1.0, 1.0);
          }
        }
        stats.kernel_launches += 1;
      }
      stats.scalar_flops += 2.0 * nq * nhb * nhk;
    }

    // Stage 4: GEMM2 (Eq. 7 second transform), skipped when coalesced above.
    if (!fully_fused) {
      double s_abq = 1.0;
      if (quant && config_.group_scaling) {
        const double m = max_abs(abq.data(), abq.size());
        if (m > 0.0) s_abq = 1.0 / m;
        for (double& v : abq) v *= s_abq;
      }
      for (std::size_t q = 0; q < nq; ++q) {
        run_gemm(abq.data() + q * abq_stride, ket_e[q * key.kcd + kp].data(),
                 cart.data() + q * cart_stride, ncb, nck, nhk,
                 quant ? 1.0 / (s_ket * s_abq) : 1.0, 1.0);
      }
      stats.global_bytes += static_cast<double>(quant ? 4 : 8) * nq *
                             (abq_stride + cart_stride);
      stats.kernel_launches += 1;
    }
  }

  // Stage 5: Cartesian -> spherical, two batched GEMMs.
  const MatrixD& kab_sph = cart_to_sph_pair(key.la, key.lb);
  const MatrixD kcd_sph_t = cart_to_sph_pair(key.lc, key.ld).transposed();
  const int nsb = key.nsph_bra();
  const int nsk = key.nsph_ket();
  std::vector<double> tmp(static_cast<std::size_t>(nsb) * nck);
  for (std::size_t q = 0; q < nq; ++q) {
    out[q].assign(static_cast<std::size_t>(nsb) * nsk, 0.0);
    gemm_fp64(kab_sph.data(), cart.data() + q * cart_stride, tmp.data(), nsb,
              nck, ncb, 1.0, 0.0, gc);
    gemm_fp64(tmp.data(), kcd_sph_t.data(), out[q].data(), nsb, nsk, nck, 1.0,
              0.0, gc);
    stats.gemm_flops += gemm_flops(nsb, nck, ncb) + gemm_flops(nsb, nsk, nck);
  }
  stats.kernel_launches += 2;
  stats.global_bytes += 8.0 * nq * (cart_stride + nsb * nsk);

  stats.wall_seconds = timer.seconds();
  return stats;
}

}  // namespace mako
