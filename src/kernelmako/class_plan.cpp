#include "kernelmako/class_plan.hpp"

#include <map>
#include <memory>
#include <mutex>

#include "basis/spherical.hpp"

namespace mako {

EriClassPlan::EriClassPlan(const EriClassKey& key) : key_(key) {
  nhb = key.nherm_bra();
  nhk = key.nherm_ket();
  nht = nherm(key.ltot());
  ncb = key.ncart_bra();
  nck = key.ncart_ket();
  nsb = key.nsph_bra();
  nsk = key.nsph_ket();
  ltot = key.ltot();

  const HermiteBasis& hb_ab = HermiteBasis::get(key.lab());
  const HermiteBasis& hb_cd = HermiteBasis::get(key.lcd());
  const HermiteBasis& hb_tot = HermiteBasis::get(key.ltot());

  sign_cd.resize(nhk);
  for (int h = 0; h < nhk; ++h) {
    const auto& q = hb_cd.component(h);
    sign_cd[h] = ((q[0] + q[1] + q[2]) % 2 == 0) ? 1.0 : -1.0;
  }
  combined.resize(static_cast<std::size_t>(nhb) * nhk);
  for (int hp = 0; hp < nhb; ++hp) {
    const auto& p = hb_ab.component(hp);
    for (int hq = 0; hq < nhk; ++hq) {
      const auto& q = hb_cd.component(hq);
      combined[static_cast<std::size_t>(hp) * nhk + hq] =
          hb_tot.index(p[0] + q[0], p[1] + q[1], p[2] + q[2]);
    }
  }

  sph_bra = &cart_to_sph_pair(key.la, key.lb);
  sph_ket = &cart_to_sph_pair(key.lc, key.ld);
}

EriPlanCache& EriPlanCache::process() {
  static EriPlanCache* cache = new EriPlanCache();  // leaky: plans outlive all
  return *cache;
}

const EriClassPlan& EriPlanCache::get(const EriClassKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = plans_.find(key);
  if (it == plans_.end()) {
    it = plans_.emplace(key, std::make_unique<EriClassPlan>(key)).first;
  }
  return *it->second;
}

std::size_t EriPlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

const EriClassPlan& EriClassPlan::get(const EriClassKey& key) {
  return EriPlanCache::process().get(key);
}

std::size_t EriClassPlan::cache_size() {
  return EriPlanCache::process().size();
}

}  // namespace mako
