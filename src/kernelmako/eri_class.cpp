#include "kernelmako/eri_class.hpp"

#include <cstdio>

namespace mako {
namespace {
char l_letter(int l) {
  static const char letters[] = "spdfghik";
  return (l >= 0 && l < 8) ? letters[l] : '?';
}
}  // namespace

std::string EriClassKey::name() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%c%c|%c%c) K{%d,%d}", l_letter(la),
                l_letter(lb), l_letter(lc), l_letter(ld), kab, kcd);
  return buf;
}

}  // namespace mako
