#include "linalg/matrix.hpp"

#include <cmath>

namespace mako {

double frobenius_norm(const MatrixD& m) {
  double acc = 0.0;
  const double* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) acc += p[i] * p[i];
  return std::sqrt(acc);
}

double max_abs_diff(const MatrixD& a, const MatrixD& b) {
  double worst = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(pa[i] - pb[i]));
  }
  return worst;
}

double rmse(const double* a, const double* b, std::size_t n) {
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

double rmse(const MatrixD& a, const MatrixD& b) {
  return rmse(a.data(), b.data(), a.size());
}

double trace_product(const MatrixD& a, const MatrixD& b) {
  double acc = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * b(c, r);
  return acc;
}

}  // namespace mako
