// Dense row-major matrix/vector containers.  These deliberately stay simple —
// Mako's performance story lives in the GEMM micro-kernels (gemm.hpp), not in
// the container.
#pragma once

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <vector>

namespace mako {

/// Dense row-major matrix over T.
template <typename T = double>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  T& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  T* row(std::size_t r) noexcept { return data_.data() + r * cols_; }
  const T* row(std::size_t r) const noexcept { return data_.data() + r * cols_; }

  void fill(T value) { data_.assign(data_.size(), value); }

  void resize(std::size_t rows, std::size_t cols, T fill = T{}) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill);
  }

  /// Identity matrix of dimension n.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n, T{});
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  [[nodiscard]] Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  Matrix& operator+=(const Matrix& other) {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& other) {
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
  }
  Matrix& operator*=(T scale) {
    for (auto& v : data_) v *= scale;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, T s) { return a *= s; }
  friend Matrix operator*(T s, Matrix a) { return a *= s; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixF = Matrix<float>;

/// Dense vector over T (thin alias over std::vector with math helpers).
template <typename T = double>
using Vector = std::vector<T>;

using VectorD = std::vector<double>;

// --- Small helpers used across modules -------------------------------------

/// Frobenius norm.
double frobenius_norm(const MatrixD& m);

/// Max-abs elementwise difference between two equally sized matrices.
double max_abs_diff(const MatrixD& a, const MatrixD& b);

/// Root-mean-square elementwise difference (the paper's Table-2 metric).
double rmse(const MatrixD& a, const MatrixD& b);

/// RMSE over raw buffers.
double rmse(const double* a, const double* b, std::size_t n);

/// trace(A * B) for symmetric same-size matrices — the SCF energy contraction.
double trace_product(const MatrixD& a, const MatrixD& b);

}  // namespace mako
