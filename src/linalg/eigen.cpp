#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "linalg/gemm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mako {
namespace {

double hypot2(double a, double b) { return std::sqrt(a * a + b * b); }

// Householder reduction of a symmetric matrix to tridiagonal form.
// Adapted from the classic EISPACK tred2 routine; `z` holds the accumulated
// orthogonal transform on exit, `d` the diagonal, `e` the subdiagonal.
void tred2(MatrixD& z, VectorD& d, VectorD& e) {
  const std::size_t n = z.rows();
  d.assign(n, 0.0);
  e.assign(n, 0.0);

  for (std::size_t i = n - 1; i > 0; --i) {
    const std::size_t l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (std::size_t k = 0; k <= l; ++k) scale += std::fabs(z(i, k));
      if (scale == 0.0) {
        e[i] = z(i, l);
      } else {
        for (std::size_t k = 0; k <= l; ++k) {
          z(i, k) /= scale;
          h += z(i, k) * z(i, k);
        }
        double f = z(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        z(i, l) = f - g;
        f = 0.0;
        for (std::size_t j = 0; j <= l; ++j) {
          z(j, i) = z(i, j) / h;
          g = 0.0;
          for (std::size_t k = 0; k <= j; ++k) g += z(j, k) * z(i, k);
          for (std::size_t k = j + 1; k <= l; ++k) g += z(k, j) * z(i, k);
          e[j] = g / h;
          f += e[j] * z(i, j);
        }
        const double hh = f / (h + h);
        for (std::size_t j = 0; j <= l; ++j) {
          f = z(i, j);
          e[j] = g = e[j] - hh * f;
          for (std::size_t k = 0; k <= j; ++k)
            z(j, k) -= (f * e[k] + g * z(i, k));
        }
      }
    } else {
      e[i] = z(i, l);
    }
    d[i] = h;
  }

  d[0] = 0.0;
  e[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (d[i] != 0.0) {
      for (std::size_t j = 0; j < i; ++j) {
        double g = 0.0;
        for (std::size_t k = 0; k < i; ++k) g += z(i, k) * z(k, j);
        for (std::size_t k = 0; k < i; ++k) z(k, j) -= g * z(k, i);
      }
    }
    d[i] = z(i, i);
    z(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      z(j, i) = 0.0;
      z(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on the tridiagonal form, accumulating the
// transforms into z.  Classic tqli.
void tqli(VectorD& d, VectorD& e, MatrixD& z) {
  const std::size_t n = d.size();
  if (n == 0) return;
  for (std::size_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= 1e-300 ||
            std::fabs(e[m]) <= std::numeric_limits<double>::epsilon() * dd)
          break;
      }
      if (m != l) {
        if (iter++ == 60) {
          throw std::runtime_error("eigh: QL iteration did not converge");
        }
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = hypot2(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + (g >= 0.0 ? std::fabs(r) : -std::fabs(r)));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        for (std::size_t i = m; i-- > l;) {
          double f = s * e[i];
          const double b = c * e[i];
          r = hypot2(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (std::size_t k = 0; k < n; ++k) {
            f = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * f;
            z(k, i) = c * z(k, i) - s * f;
          }
        }
        if (r == 0.0 && m - l > 1) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

}  // namespace

EigenResult eigh(const MatrixD& a) {
  MAKO_TRACE_SCOPE(obs::TraceCat::kLinalg, "eigh");
  MAKO_METRIC_COUNT("linalg.eigh_calls", 1);
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("eigh: matrix must be square");
  }
  const std::size_t n = a.rows();
  EigenResult result;
  result.eigenvectors = a;
  VectorD d, e;
  if (n == 0) return result;
  if (n == 1) {
    result.eigenvalues = {a(0, 0)};
    result.eigenvectors = MatrixD::identity(1);
    return result;
  }
  tred2(result.eigenvectors, d, e);
  tqli(d, e, result.eigenvectors);

  // Sort ascending, permuting eigenvector columns accordingly.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return d[x] < d[y]; });
  MatrixD sorted(n, n);
  result.eigenvalues.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = d[order[j]];
    for (std::size_t i = 0; i < n; ++i)
      sorted(i, j) = result.eigenvectors(i, order[j]);
  }
  result.eigenvectors = std::move(sorted);
  return result;
}

EigenResult eigh_subspace(const MatrixD& a, std::size_t nev,
                          std::size_t max_iter, double tol) {
  MAKO_TRACE_SCOPE(obs::TraceCat::kLinalg, "eigh_subspace");
  MAKO_METRIC_COUNT("linalg.eigh_subspace_calls", 1);
  const std::size_t n = a.rows();
  nev = std::min(nev, n);
  if (nev == 0) return {};

  // Shift so the target (lowest) eigenvalues become largest in magnitude:
  // iterate with (sigma*I - A), sigma = Gershgorin upper bound.
  double sigma = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      row += (i == j) ? a(i, i) : std::fabs(a(i, j));
    sigma = std::max(sigma, row);
  }
  MatrixD b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      b(i, j) = (i == j ? sigma : 0.0) - a(i, j);

  // Start from a deterministic full-rank block.
  const std::size_t block = std::min(n, nev + std::min<std::size_t>(nev, 8));
  MatrixD v(n, block, 0.0);
  for (std::size_t j = 0; j < block; ++j) {
    v(j % n, j) = 1.0;
    v((7 * j + 3) % n, j) += 0.5;
  }

  VectorD prev(nev, 1e300);
  EigenResult out;
  out.converged = false;
  for (std::size_t it = 0; it < max_iter; ++it) {
    out.iterations = it + 1;
    // Power step: W = B * V  (a GEMM).
    MatrixD w = matmul(b, v);

    // Rayleigh-Ritz in the subspace: G = W^T W, H = W^T (B W).
    MatrixD g = matmul(w, Trans::kYes, w, Trans::kNo);
    MatrixD bw = matmul(b, w);
    MatrixD h = matmul(w, Trans::kYes, bw, Trans::kNo);

    // Orthonormalize via G^{-1/2}, then diagonalize the projected operator.
    MatrixD ghalf = inverse_sqrt(g, 1e-12);
    MatrixD hp = matmul(ghalf, Trans::kYes, matmul(h, ghalf), Trans::kNo);
    EigenResult sub = eigh(hp);

    // Ritz vectors: V = W * G^{-1/2} * U, descending order of shifted op
    // = ascending order of A.
    MatrixD u(sub.eigenvectors.rows(), sub.eigenvectors.cols());
    const std::size_t bcols = sub.eigenvalues.size();
    for (std::size_t jj = 0; jj < bcols; ++jj)
      for (std::size_t ii = 0; ii < u.rows(); ++ii)
        u(ii, jj) = sub.eigenvectors(ii, bcols - 1 - jj);
    v = matmul(matmul(w, ghalf), u);

    // Convergence check on the leading nev Ritz values (mapped back to A).
    VectorD ritz(nev);
    for (std::size_t jv = 0; jv < nev; ++jv)
      ritz[jv] = sigma - sub.eigenvalues[bcols - 1 - jv];
    double delta = 0.0;
    for (std::size_t jv = 0; jv < nev; ++jv)
      delta = std::max(delta, std::fabs(ritz[jv] - prev[jv]));
    prev = ritz;
    if (delta < tol) {
      out.converged = true;
      break;
    }
  }

  out.eigenvalues.assign(prev.begin(), prev.end());
  out.eigenvectors.resize(n, nev);
  for (std::size_t j = 0; j < nev; ++j)
    for (std::size_t i = 0; i < n; ++i) out.eigenvectors(i, j) = v(i, j);
  return out;
}

MatrixD inverse_sqrt(const MatrixD& s, double lindep_threshold) {
  EigenResult es = eigh(s);
  const std::size_t n = s.rows();
  std::vector<std::size_t> kept;
  for (std::size_t i = 0; i < n; ++i) {
    if (es.eigenvalues[i] > lindep_threshold) kept.push_back(i);
  }
  MatrixD x(n, kept.size());
  for (std::size_t jj = 0; jj < kept.size(); ++jj) {
    const double w = 1.0 / std::sqrt(es.eigenvalues[kept[jj]]);
    for (std::size_t i = 0; i < n; ++i)
      x(i, jj) = es.eigenvectors(i, kept[jj]) * w;
  }
  // Löwdin form X = U w^{-1/2} U^T when nothing was dropped.
  if (kept.size() == n) {
    MatrixD ut(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) ut(i, j) = es.eigenvectors(j, i);
    return matmul(x, ut);
  }
  return x;  // canonical orthogonalization (rectangular)
}

bool cholesky(MatrixD& a) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0) return false;
    a(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / a(j, j);
    }
  }
  // Zero the strict upper triangle so a holds L.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
  return true;
}

VectorD solve_spd(MatrixD a, VectorD b) {
  const std::size_t n = a.rows();
  MatrixD l = a;
  double reg = 0.0;
  while (!cholesky(l)) {
    reg = (reg == 0.0) ? 1e-12 : reg * 10.0;
    if (reg > 1.0) throw std::runtime_error("solve_spd: not SPD");
    l = a;
    for (std::size_t i = 0; i < n; ++i) l(i, i) += reg;
  }
  // Forward substitution L y = b.
  VectorD y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Back substitution L^T x = y.
  VectorD x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
    x[i] = s / l(i, i);
  }
  return x;
}

VectorD solve_lu(MatrixD a, VectorD b) {
  const std::size_t n = a.rows();
  std::vector<std::size_t> piv(n);
  std::iota(piv.begin(), piv.end(), 0);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t p = k;
    for (std::size_t i = k + 1; i < n; ++i)
      if (std::fabs(a(i, k)) > std::fabs(a(p, k))) p = i;
    if (std::fabs(a(p, k)) < 1e-300)
      throw std::runtime_error("solve_lu: singular matrix");
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(p, j));
      std::swap(b[k], b[p]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a(i, k) / a(k, k);
      a(i, k) = f;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= f * a(k, j);
      b[i] -= f * b[k];
    }
  }
  VectorD x(n);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
    x[i] = s / a(i, i);
  }
  return x;
}

}  // namespace mako
