#include "linalg/backend.hpp"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "linalg/gemm.hpp"
#include "obs/metrics.hpp"
#include "robust/status.hpp"

namespace mako {

// --- GemmBackend (NVI shell) ------------------------------------------------

GemmBackend::GemmBackend(std::string name, GemmCapabilities caps)
    : name_(std::move(name)),
      caps_(std::move(caps)),
      dispatches_(&obs::MetricsRegistry::global().counter("gemm.dispatch." +
                                                          name_)),
      degrades_(&obs::MetricsRegistry::global().counter(
          "precision.capability_degradations")) {}

GemmBackend::~GemmBackend() = default;

void GemmBackend::fp64(const double* a, bool trans_a, const double* b,
                       bool trans_b, double* c, std::size_t m, std::size_t n,
                       std::size_t k, double alpha, double beta,
                       const GemmConfig& cfg) const {
  dispatches_->add();
  do_fp64(a, trans_a, b, trans_b, c, m, n, k, alpha, beta, cfg);
}

void GemmBackend::fp32(const float* a, const float* b, float* c, std::size_t m,
                       std::size_t n, std::size_t k, float alpha, float beta,
                       const GemmConfig& cfg) const {
  dispatches_->add();
  do_fp32(a, b, c, m, n, k, alpha, beta, cfg);
}

void GemmBackend::mixed(const float* qa, bool trans_a, const float* qb,
                        bool trans_b, double* c, std::size_t m, std::size_t n,
                        std::size_t k, double alpha, double beta,
                        const GemmConfig& cfg) const {
  dispatches_->add();
  do_mixed(qa, trans_a, qb, trans_b, c, m, n, k, alpha, beta, cfg);
}

void GemmBackend::quantized(const double* a, const double* b, double* c,
                            std::size_t m, std::size_t n, std::size_t k,
                            double alpha, double beta,
                            const GemmConfig& cfg) const {
  dispatches_->add();
  do_quantized(a, b, c, m, n, k, alpha, beta, cfg);
}

void GemmBackend::fp16_baseline(const double* a, const double* b, double* c,
                                std::size_t m, std::size_t n, std::size_t k,
                                double alpha, double beta,
                                bool trans_a) const {
  dispatches_->add();
  // Backend-independent strawman by contract: Table 2 compares every backend
  // against the same naive FP16-accumulator baseline.
  gemm_fp16_naive(a, b, c, m, n, k, alpha, beta, trans_a);
}

std::int64_t GemmBackend::dispatches() const noexcept {
  return dispatches_->value();
}

void GemmBackend::do_quantized(const double* a, const double* b, double* c,
                               std::size_t m, std::size_t n, std::size_t k,
                               double alpha, double beta,
                               const GemmConfig& cfg) const {
  if (!caps_.quantized || cfg.precision == Precision::kFP64) {
    // Documented degrade: no reduced-precision datapath -> exact FP64.
    // Count only true capability degrades (a caller *asking* for kFP64 via
    // cfg is a routing decision, not a degradation).
    if (!caps_.quantized && cfg.precision != Precision::kFP64) {
      degrades_->add();
    }
    do_fp64(a, false, b, false, c, m, n, k, alpha, beta, cfg);
    return;
  }
  // Round operands through the target storage format once, then run the
  // mixed-precision (FP32-accumulate) path.  Thread-local scratch keeps the
  // per-call staging allocation-free in the batched-ERI hot loops.
  static thread_local std::vector<float> qa, qb;
  qa.resize(m * k);
  qb.resize(k * n);
  quantize_to_float(a, qa.data(), m * k, cfg.precision);
  quantize_to_float(b, qb.data(), k * n, cfg.precision);
  do_mixed(qa.data(), false, qb.data(), false, c, m, n, k, alpha, beta, cfg);
}

namespace {

/// op(X)(r, c) for a dense row-major operand with optional transpose.
template <typename T>
inline T ref_at(const T* x, bool trans, std::size_t ld, std::size_t r,
                std::size_t c) {
  return trans ? x[c * ld + r] : x[r * ld + c];
}

// --- reference: textbook triple loops ---------------------------------------
//
// The numerical oracle: no tiling, no packing, no config sensitivity.  Every
// other backend must reproduce its FP64 results to rounding error, and it is
// the fallback CI leg (MAKO_BACKEND=reference) guards.
class ReferenceBackend final : public GemmBackend {
 public:
  ReferenceBackend()
      : GemmBackend("reference",
                    {/*quantized=*/false, /*register_blocked=*/false,
                     "naive triple-loop kernels (numerical oracle)"}) {}

 protected:
  void do_fp64(const double* a, bool trans_a, const double* b, bool trans_b,
               double* c, std::size_t m, std::size_t n, std::size_t k,
               double alpha, double beta,
               const GemmConfig& /*cfg*/) const override {
    const std::size_t lda = trans_a ? m : k;
    const std::size_t ldb = trans_b ? k : n;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::size_t p = 0; p < k; ++p) {
          acc += ref_at(a, trans_a, lda, i, p) * ref_at(b, trans_b, ldb, p, j);
        }
        c[i * n + j] = beta * c[i * n + j] + alpha * acc;
      }
    }
  }

  void do_fp32(const float* a, const float* b, float* c, std::size_t m,
               std::size_t n, std::size_t k, float alpha, float beta,
               const GemmConfig& /*cfg*/) const override {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += a[i * k + p] * b[p * n + j];
        c[i * n + j] = beta * c[i * n + j] + alpha * acc;
      }
    }
  }

  void do_mixed(const float* qa, bool trans_a, const float* qb, bool trans_b,
                double* c, std::size_t m, std::size_t n, std::size_t k,
                double alpha, double beta,
                const GemmConfig& /*cfg*/) const override {
    const std::size_t lda = trans_a ? m : k;
    const std::size_t ldb = trans_b ? k : n;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        float acc = 0.0f;  // FP32 accumulation: stage one of dual-stage
        for (std::size_t p = 0; p < k; ++p) {
          acc +=
              ref_at(qa, trans_a, lda, i, p) * ref_at(qb, trans_b, ldb, p, j);
        }
        c[i * n + j] = beta * c[i * n + j] + alpha * static_cast<double>(acc);
      }
    }
  }
};

// --- blocked: the PR-1 register-blocked kernels -----------------------------
//
// Routes to the packed BLIS-style kernels in gemm.cpp (honoring
// GemmConfig::packed so the ablation harness can still select the legacy
// unpacked tile path).  No reduced-precision capability: `quantized` degrades
// to FP64 via the base-class default, exactly like the reference ERI engine.
class BlockedBackend : public GemmBackend {
 public:
  BlockedBackend()
      : GemmBackend("blocked",
                    {/*quantized=*/false, /*register_blocked=*/true,
                     "register-blocked packed kernels, FP64/FP32 only"}) {}

 protected:
  BlockedBackend(std::string name, GemmCapabilities caps)
      : GemmBackend(std::move(name), std::move(caps)) {}

  void do_fp64(const double* a, bool trans_a, const double* b, bool trans_b,
               double* c, std::size_t m, std::size_t n, std::size_t k,
               double alpha, double beta, const GemmConfig& cfg) const final {
    gemm_fp64_ex(a, trans_a, b, trans_b, c, m, n, k, alpha, beta, cfg);
  }

  void do_fp32(const float* a, const float* b, float* c, std::size_t m,
               std::size_t n, std::size_t k, float alpha, float beta,
               const GemmConfig& cfg) const final {
    gemm_fp32(a, b, c, m, n, k, alpha, beta, cfg);
  }

  void do_mixed(const float* qa, bool trans_a, const float* qb, bool trans_b,
                double* c, std::size_t m, std::size_t n, std::size_t k,
                double alpha, double beta, const GemmConfig& cfg) const final {
    gemm_quantized_ops(qa, trans_a, qb, trans_b, c, m, n, k, alpha, beta, cfg);
  }
};

// --- blocked+quantized: the full dual-stage default -------------------------
//
// Same kernels as `blocked` plus the reduced-precision capability, so
// `quantized` really rounds operands through cfg.precision and accumulates at
// FP32 (tensor-core numerics).  This is the process default.
class BlockedQuantizedBackend final : public BlockedBackend {
 public:
  BlockedQuantizedBackend()
      : BlockedBackend(
            GemmBackendRegistry::kDefaultName,
            {/*quantized=*/true, /*register_blocked=*/true,
             "register-blocked kernels + FP16/TF32 dual-stage datapath"}) {}
};

}  // namespace

// --- GemmBackendRegistry ----------------------------------------------------

struct GemmBackendRegistry::Impl {
  mutable std::mutex mutex;  ///< guards `backends`, not the backends
  std::map<std::string, std::unique_ptr<GemmBackend>, std::less<>> backends;
  std::atomic<const GemmBackend*> active{nullptr};
};

GemmBackendRegistry::GemmBackendRegistry() : impl_(new Impl) {
  impl_->backends.emplace("reference", std::make_unique<ReferenceBackend>());
  impl_->backends.emplace("blocked", std::make_unique<BlockedBackend>());
  impl_->backends.emplace(kDefaultName,
                          std::make_unique<BlockedQuantizedBackend>());
}

GemmBackendRegistry& GemmBackendRegistry::instance() {
  static GemmBackendRegistry* registry = new GemmBackendRegistry();  // leaky
  return *registry;
}

void GemmBackendRegistry::register_backend(
    std::unique_ptr<GemmBackend> backend) {
  assert(backend != nullptr);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::string& name = backend->name();
  if (!impl_->backends.emplace(name, std::move(backend)).second) {
    throw InputError(FaultKind::kInvalidInput,
                     "GEMM backend '" + name + "' is already registered");
  }
}

const GemmBackend* GemmBackendRegistry::find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const auto it = impl_->backends.find(name);
  return it == impl_->backends.end() ? nullptr : it->second.get();
}

const GemmBackend& GemmBackendRegistry::resolve(std::string_view name) const {
  std::string_view effective = name;
  if (effective.empty()) {
    const char* env = std::getenv("MAKO_BACKEND");
    effective = (env != nullptr && env[0] != '\0') ? env : kDefaultName;
  }
  if (const GemmBackend* backend = find(effective)) {
    return *backend;
  }
  std::ostringstream msg;
  msg << "unknown GEMM backend '" << effective << "'; registered backends:";
  for (const std::string& known : names()) msg << " " << known;
  msg << " (select via --backend=NAME, MakoOptions::backend, or the "
         "MAKO_BACKEND environment variable)";
  throw InputError(FaultKind::kInvalidInput, msg.str());
}

std::vector<std::string> GemmBackendRegistry::names() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->backends.size());
  for (const auto& [name, backend] : impl_->backends) out.push_back(name);
  return out;  // std::map iteration order is already sorted
}

const GemmBackend& GemmBackendRegistry::active() const {
  const GemmBackend* current = impl_->active.load(std::memory_order_acquire);
  if (current == nullptr) {
    // First use: honor the MAKO_BACKEND override so whole-process runs (the
    // CI reference leg, `MAKO_BACKEND=reference ctest`) route every ambient
    // matmul through the selected backend.
    current = &resolve({});
    impl_->active.store(current, std::memory_order_release);
  }
  return *current;
}

void GemmBackendRegistry::set_active(const GemmBackend& backend) noexcept {
  impl_->active.store(&backend, std::memory_order_release);
}

const GemmBackend& resolve_gemm_backend(std::string_view name) {
  return GemmBackendRegistry::instance().resolve(name);
}

// --- Matrix convenience wrappers --------------------------------------------

void gemm(const MatrixD& a, Trans ta, const MatrixD& b, Trans tb, MatrixD& c,
          double alpha, double beta, const GemmBackend* backend) {
  const std::size_t m = (ta == Trans::kYes) ? a.cols() : a.rows();
  const std::size_t ka = (ta == Trans::kYes) ? a.rows() : a.cols();
  const std::size_t kb = (tb == Trans::kYes) ? b.cols() : b.rows();
  const std::size_t n = (tb == Trans::kYes) ? b.rows() : b.cols();
  assert(ka == kb);
  (void)kb;
  if (c.rows() != m || c.cols() != n) {
    c.resize(m, n);
  }
  const GemmBackend& be =
      backend != nullptr ? *backend : GemmBackendRegistry::instance().active();
  be.fp64(a.data(), ta == Trans::kYes, b.data(), tb == Trans::kYes, c.data(),
          m, n, ka, alpha, beta);
}

MatrixD matmul(const MatrixD& a, const MatrixD& b, const GemmBackend* backend) {
  MatrixD c(a.rows(), b.cols());
  gemm(a, Trans::kNo, b, Trans::kNo, c, 1.0, 0.0, backend);
  return c;
}

MatrixD matmul(const MatrixD& a, Trans ta, const MatrixD& b, Trans tb,
               const GemmBackend* backend) {
  MatrixD c;
  gemm(a, ta, b, tb, c, 1.0, 0.0, backend);
  return c;
}

}  // namespace mako
