// Multi-precision tiled GEMM micro-kernels.
//
// This is the host-side analogue of the CUTLASS kernels Mako instantiates on
// GPUs.  The kernels are parameterized exactly like a CUTLASS threadblock
// tile: (tile_m, tile_n, tile_k) block shape plus an inner-loop unroll factor
// that plays the role of the paper's implicit-ILP scheduling factor
// (Section 3.1.1).  CompilerMako's autotuner searches this configuration
// space empirically, just as the paper's Algorithm 2 does over CUTLASS
// primitives.
//
// Precision behaviour mirrors tensor cores: FP16 and TF32 operands are
// rounded with round-to-nearest-even on entry and all products are
// accumulated in FP32 (the MMA contract), reproducing hardware numerics
// bit-for-bit up to FMA contraction.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"
#include "util/precision.hpp"

namespace mako {

/// CUTLASS-style kernel configuration explored by CompilerMako.
struct GemmConfig {
  int tile_m = 48;  ///< rows of C computed per block tile
  int tile_n = 48;  ///< cols of C computed per block tile
  int tile_k = 32;  ///< reduction depth staged per iteration
  int ilp = 4;      ///< inner-loop unroll (implicit instruction parallelism)
  Precision precision = Precision::kFP64;

  [[nodiscard]] bool operator==(const GemmConfig& o) const noexcept {
    return tile_m == o.tile_m && tile_n == o.tile_n && tile_k == o.tile_k &&
           ilp == o.ilp && precision == o.precision;
  }
};

// --- Raw pointer kernels (row-major, C = alpha*op(A)*op(B) + beta*C) --------

/// FP64 GEMM, C[MxN] += A[MxK] * B[KxN].  Tiling/unroll from `cfg`.
void gemm_fp64(const double* a, const double* b, double* c, std::size_t m,
               std::size_t n, std::size_t k, double alpha = 1.0,
               double beta = 0.0, const GemmConfig& cfg = {});

/// FP32 GEMM with FP32 accumulation.
void gemm_fp32(const float* a, const float* b, float* c, std::size_t m,
               std::size_t n, std::size_t k, float alpha = 1.0f,
               float beta = 0.0f, const GemmConfig& cfg = {});

/// Quantized GEMM: double inputs are rounded through `cfg.precision`
/// (FP16/TF32/FP32) on entry, multiplied at that precision, and accumulated
/// in FP32; the FP32 result is then widened into the FP64 output.  This is
/// QuantMako's dual-stage accumulation building block: in-kernel FP32
/// accumulation followed by FP64 accumulation at the Fock stage.
void gemm_quantized(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t n, std::size_t k, double alpha, double beta,
                    const GemmConfig& cfg);

/// Naive FP16 GEMM: operands AND the running accumulator are rounded to
/// binary16 at every step.  This is the "Baseline FP16" kernel of the
/// paper's Table 2 — the strawman dual-stage accumulation exists to beat.
void gemm_fp16_naive(const double* a, const double* b, double* c,
                     std::size_t m, std::size_t n, std::size_t k, double alpha,
                     double beta);

// --- Matrix convenience wrappers (FP64) -------------------------------------

enum class Trans { kNo, kYes };

/// General C = alpha * op(A) * op(B) + beta * C over Matrix<double>.
void gemm(const MatrixD& a, Trans ta, const MatrixD& b, Trans tb, MatrixD& c,
          double alpha = 1.0, double beta = 0.0);

/// Returns A * B.
MatrixD matmul(const MatrixD& a, const MatrixD& b);

/// Returns op(A) * op(B).
MatrixD matmul(const MatrixD& a, Trans ta, const MatrixD& b, Trans tb);

/// FLOP count of an (m,n,k) GEMM (2*m*n*k).
constexpr double gemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

}  // namespace mako
