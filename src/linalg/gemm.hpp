// Multi-precision tiled GEMM micro-kernels.
//
// This is the host-side analogue of the CUTLASS kernels Mako instantiates on
// GPUs.  The kernels are parameterized exactly like a CUTLASS threadblock
// tile: (tile_m, tile_n, tile_k) block shape plus an inner-loop unroll factor
// that plays the role of the paper's implicit-ILP scheduling factor
// (Section 3.1.1).  CompilerMako's autotuner searches this configuration
// space empirically, just as the paper's Algorithm 2 does over CUTLASS
// primitives.
//
// Precision behaviour mirrors tensor cores: FP16 and TF32 operands are
// rounded with round-to-nearest-even on entry and all products are
// accumulated in FP32 (the MMA contract), reproducing hardware numerics
// bit-for-bit up to FMA contraction.
//
// NOTE: this header is private to src/linalg/.  Everything else routes GEMMs
// through the GemmBackend interface in linalg/backend.hpp (which also owns
// GemmConfig and the Matrix matmul wrappers); a grep check in
// scripts/check_gemm_includes.sh enforces the boundary.
#pragma once

#include <cstddef>

#include "linalg/backend.hpp"  // GemmConfig, quantize_to_float
#include "util/precision.hpp"

namespace mako {

// --- Raw pointer kernels (row-major, C = alpha*op(A)*op(B) + beta*C) --------

/// FP64 GEMM, C[MxN] += A[MxK] * B[KxN].  Tiling/unroll from `cfg`.
void gemm_fp64(const double* a, const double* b, double* c, std::size_t m,
               std::size_t n, std::size_t k, double alpha = 1.0,
               double beta = 0.0, const GemmConfig& cfg = {});

/// FP32 GEMM with FP32 accumulation.
void gemm_fp32(const float* a, const float* b, float* c, std::size_t m,
               std::size_t n, std::size_t k, float alpha = 1.0f,
               float beta = 0.0f, const GemmConfig& cfg = {});

/// FP64 GEMM with native operand transposes: C = alpha*op(A)*op(B) + beta*C
/// where op(X) = X or X^T.  Operands are dense row-major as stored, i.e. A is
/// [KxM] when trans_a and [MxK] otherwise.  The transpose is absorbed by the
/// packing stage — no materialized transpose copy is ever made.
void gemm_fp64_ex(const double* a, bool trans_a, const double* b, bool trans_b,
                  double* c, std::size_t m, std::size_t n, std::size_t k,
                  double alpha = 1.0, double beta = 0.0,
                  const GemmConfig& cfg = {});

/// Quantized GEMM over operands already rounded through the target precision
/// (see quantize_to_float): multiplies at FP32, accumulates at FP32, and
/// widens alpha*(op(A)*op(B)) into the FP64 destination (dual-stage
/// accumulation).  This is the reuse-aware path: invariant operands are
/// quantized once per batch instead of once per GEMM call.
void gemm_quantized_ops(const float* qa, bool trans_a, const float* qb,
                        bool trans_b, double* c, std::size_t m, std::size_t n,
                        std::size_t k, double alpha, double beta,
                        const GemmConfig& cfg);

/// Quantized GEMM: double inputs are rounded through `cfg.precision`
/// (FP16/TF32/FP32) on entry, multiplied at that precision, and accumulated
/// in FP32; the FP32 result is then widened into the FP64 output.  This is
/// QuantMako's dual-stage accumulation building block: in-kernel FP32
/// accumulation followed by FP64 accumulation at the Fock stage.
void gemm_quantized(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t n, std::size_t k, double alpha, double beta,
                    const GemmConfig& cfg);

/// Naive FP16 GEMM: operands AND the running accumulator are rounded to
/// binary16 at every step.  This is the "Baseline FP16" kernel of the
/// paper's Table 2 — the strawman dual-stage accumulation exists to beat.
/// `trans_a` reads A as [KxM] (native transpose, no copy).
void gemm_fp16_naive(const double* a, const double* b, double* c,
                     std::size_t m, std::size_t n, std::size_t k, double alpha,
                     double beta, bool trans_a = false);

}  // namespace mako
