// Pluggable GEMM backend layer — the stable matmul seam of the paper's
// thesis (Section 2.3): every chemistry stage above this header expresses its
// work as batched GEMMs against an abstract backend, so swapping the kernel
// implementation (naive loops, register-blocked host kernels, and later
// SIMD/GPU/distributed variants) never touches chemistry code.  This mirrors
// how Mako inherits CUTLASS/cuBLAS scalability by construction.
//
// The layer has three parts:
//   * GemmBackend     — the kernel contract: fp64/fp32/mixed/quantized entry
//                       points plus a capability descriptor.  Entry points
//                       are NVI wrappers that bump the per-backend dispatch
//                       counter ("gemm.dispatch.<name>") before forwarding.
//   * GemmBackendRegistry — process-wide name -> backend table with an
//                       "active" default selected by name (MakoOptions::
//                       backend, `mako --backend=`, or the MAKO_BACKEND
//                       environment variable).
//   * Matrix wrappers — gemm()/matmul() convenience over MatrixD, routed
//                       through an explicit backend or the active default.
//
// Thread-safety contract: backends are immutable after registration and all
// entry points are safe to call concurrently from thread-pool workers
// (per-call scratch is thread_local inside the kernels).  Accumulation
// precision guarantees are per entry point: fp64/fp32 accumulate at operand
// precision; mixed/quantized multiply at the storage precision of the
// operands and accumulate at FP32, then widen into the FP64 destination
// (stage one of dual-stage accumulation).  Operands are dense row-major with
// no alignment requirement beyond the element type's.
//
// This header is the only linalg GEMM surface includable outside src/linalg/;
// direct includes of linalg/gemm.hpp elsewhere are rejected by
// scripts/check_gemm_includes.sh (wired into ctest).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"
#include "util/precision.hpp"

namespace mako::obs {
class Counter;
}  // namespace mako::obs

namespace mako {

/// CUTLASS-style kernel configuration explored by CompilerMako.
struct GemmConfig {
  int tile_m = 48;  ///< rows of C computed per block tile
  int tile_n = 48;  ///< cols of C computed per block tile
  int tile_k = 32;  ///< reduction depth staged per iteration
  int ilp = 4;      ///< inner-loop unroll (implicit instruction parallelism)
  Precision precision = Precision::kFP64;
  /// Packed register-blocked execution: operands are staged into contiguous
  /// MR/NR panels (the host analogue of CUTLASS shared-memory staging) and a
  /// register-resident micro-kernel keeps the C fragment out of memory for
  /// the whole K loop.  `false` selects the legacy unpacked tile kernel,
  /// retained as the ablation/equivalence baseline.  Backends may ignore
  /// fields that do not apply to them (the reference backend ignores all).
  bool packed = true;

  [[nodiscard]] bool operator==(const GemmConfig& o) const noexcept {
    return tile_m == o.tile_m && tile_n == o.tile_n && tile_k == o.tile_k &&
           ilp == o.ilp && precision == o.precision && packed == o.packed;
  }
};

/// FLOP count of an (m,n,k) GEMM (2*m*n*k).
constexpr double gemm_flops(std::size_t m, std::size_t n, std::size_t k) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
         static_cast<double>(k);
}

/// Rounds a double buffer to the storage format of `p`, widened to float —
/// the once-per-batch operand staging of the quantized-operand cache.
void quantize_to_float(const double* src, float* dst, std::size_t n,
                       Precision p);

/// What a backend can do, beyond the universal fp64/fp32 contract.
struct GemmCapabilities {
  /// True when the backend executes reduced-precision (FP16/TF32) multiplies
  /// natively with FP32 accumulation (the tensor-core contract).  Backends
  /// without it run the `quantized` entry point at full FP64 — QuantMako's
  /// scheduler must not route quantized work at them (ExecutionContext gates
  /// this; see ExecutionContext::quantized_execution_allowed).
  bool quantized = false;
  /// Register-blocked packed execution with native operand transposes (no
  /// materialized transpose copies).
  bool register_blocked = false;
  /// One-line human description, printed by `mako --help`-adjacent surfaces.
  std::string description;
};

/// Abstract multi-precision GEMM backend.  All matrices are dense row-major;
/// C = alpha * op(A) * op(B) + beta * C with op(X) = X or X^T.
///
/// The public entry points are non-virtual: they bump this backend's
/// dispatch counter ("gemm.dispatch.<name>" in the global metrics registry,
/// alive in every build configuration) and forward to the do_* hooks.
class GemmBackend {
 public:
  virtual ~GemmBackend();

  GemmBackend(const GemmBackend&) = delete;
  GemmBackend& operator=(const GemmBackend&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const GemmCapabilities& capabilities() const noexcept {
    return caps_;
  }

  /// FP64 GEMM with FP64 accumulation.
  void fp64(const double* a, bool trans_a, const double* b, bool trans_b,
            double* c, std::size_t m, std::size_t n, std::size_t k,
            double alpha = 1.0, double beta = 0.0,
            const GemmConfig& cfg = {}) const;

  /// FP32 GEMM with FP32 accumulation (no transposes — no caller needs them).
  void fp32(const float* a, const float* b, float* c, std::size_t m,
            std::size_t n, std::size_t k, float alpha = 1.0f,
            float beta = 0.0f, const GemmConfig& cfg = {}) const;

  /// Mixed-precision GEMM over operands already rounded to the target
  /// storage format (see quantize_to_float): multiplies at FP32, accumulates
  /// at FP32, and widens alpha*(op(A)*op(B)) into the FP64 destination —
  /// stage one of dual-stage accumulation.  This is the reuse-aware path:
  /// invariant operands are quantized once per batch, not once per call.
  void mixed(const float* qa, bool trans_a, const float* qb, bool trans_b,
             double* c, std::size_t m, std::size_t n, std::size_t k,
             double alpha, double beta, const GemmConfig& cfg) const;

  /// Quantized GEMM: double inputs are rounded through `cfg.precision` on
  /// entry, then executed as `mixed`.  Backends without the quantized
  /// capability run this at FP64 instead (documented degrade; callers that
  /// need real quantized numerics must check capabilities().quantized).
  void quantized(const double* a, const double* b, double* c, std::size_t m,
                 std::size_t n, std::size_t k, double alpha, double beta,
                 const GemmConfig& cfg) const;

  /// Naive binary16 GEMM with an FP16 accumulator — the paper's Table-2
  /// "Baseline FP16" strawman.  Backend-independent by design (the baseline
  /// must be the same everywhere); counted against this backend's dispatches.
  void fp16_baseline(const double* a, const double* b, double* c,
                     std::size_t m, std::size_t n, std::size_t k, double alpha,
                     double beta, bool trans_a = false) const;

  /// Lifetime dispatch count of this backend (mirrors the metrics counter).
  [[nodiscard]] std::int64_t dispatches() const noexcept;

 protected:
  GemmBackend(std::string name, GemmCapabilities caps);

  virtual void do_fp64(const double* a, bool trans_a, const double* b,
                       bool trans_b, double* c, std::size_t m, std::size_t n,
                       std::size_t k, double alpha, double beta,
                       const GemmConfig& cfg) const = 0;
  virtual void do_fp32(const float* a, const float* b, float* c,
                       std::size_t m, std::size_t n, std::size_t k,
                       float alpha, float beta,
                       const GemmConfig& cfg) const = 0;
  virtual void do_mixed(const float* qa, bool trans_a, const float* qb,
                        bool trans_b, double* c, std::size_t m, std::size_t n,
                        std::size_t k, double alpha, double beta,
                        const GemmConfig& cfg) const = 0;
  /// Default: quantize operands to cfg.precision then do_mixed when the
  /// backend has the quantized capability, else do_fp64.
  virtual void do_quantized(const double* a, const double* b, double* c,
                            std::size_t m, std::size_t n, std::size_t k,
                            double alpha, double beta,
                            const GemmConfig& cfg) const;

 private:
  std::string name_;
  GemmCapabilities caps_;
  obs::Counter* dispatches_;  ///< "gemm.dispatch.<name>" (never null)
  /// "precision.capability_degradations": bumped each time a quantized
  /// dispatch degrades to FP64 because the backend lacks the capability —
  /// the observable form of the "documented degrade" above (never null).
  obs::Counter* degrades_;
};

/// Process-wide backend registry.  The three built-ins ("reference",
/// "blocked", "blocked+quantized") self-register on first access; downstream
/// code may register additional backends (SIMD, GPU, distributed shims) at
/// startup.  All methods are thread-safe.
class GemmBackendRegistry {
 public:
  /// Built-in default backend name ("blocked+quantized").
  static constexpr const char* kDefaultName = "blocked+quantized";

  static GemmBackendRegistry& instance();

  /// Registers a backend under its name().  Throws InputError on duplicates.
  void register_backend(std::unique_ptr<GemmBackend> backend);

  /// nullptr when no backend of that name is registered.
  [[nodiscard]] const GemmBackend* find(std::string_view name) const;

  /// Resolves a backend by name; "" resolves to the MAKO_BACKEND environment
  /// override when set, else the built-in default.  Throws InputError naming
  /// the unknown backend and listing the registered ones.
  [[nodiscard]] const GemmBackend& resolve(std::string_view name) const;

  /// Registered backend names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  /// The process-wide default backend used by the gemm()/matmul() wrappers
  /// and by engines not bound to an ExecutionContext.  Initialized from
  /// MAKO_BACKEND (or the built-in default) on first use.
  [[nodiscard]] const GemmBackend& active() const;
  void set_active(const GemmBackend& backend) noexcept;

 private:
  GemmBackendRegistry();
  struct Impl;
  Impl* impl_;  ///< leaky (same rationale as Tracer::instance())
};

/// Shorthand: GemmBackendRegistry::instance().resolve(name).
[[nodiscard]] const GemmBackend& resolve_gemm_backend(
    std::string_view name = {});

// --- Matrix convenience wrappers (FP64) -------------------------------------

enum class Trans { kNo, kYes };

/// General C = alpha * op(A) * op(B) + beta * C over Matrix<double>, routed
/// through `backend` (or the active backend when null).
void gemm(const MatrixD& a, Trans ta, const MatrixD& b, Trans tb, MatrixD& c,
          double alpha = 1.0, double beta = 0.0,
          const GemmBackend* backend = nullptr);

/// Returns A * B.
MatrixD matmul(const MatrixD& a, const MatrixD& b,
               const GemmBackend* backend = nullptr);

/// Returns op(A) * op(B).
MatrixD matmul(const MatrixD& a, Trans ta, const MatrixD& b, Trans tb,
               const GemmBackend* backend = nullptr);

}  // namespace mako
