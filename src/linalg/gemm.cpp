#include "linalg/gemm.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace mako {
namespace {

// Inner micro-kernel: processes one block tile with the K loop unrolled by U.
// The unroll factor is the host-side realization of the paper's implicit
// instruction parallelism: independent K iterations are fused so the
// out-of-order core (standing in for the warp scheduler) can overlap them.
template <typename T, int U>
void tile_kernel(const T* a, const T* b, T* c, std::size_t lda, std::size_t ldb,
                 std::size_t ldc, std::size_t mi, std::size_t ni,
                 std::size_t ki) {
  for (std::size_t i = 0; i < mi; ++i) {
    const T* arow = a + i * lda;
    T* crow = c + i * ldc;
    std::size_t k = 0;
    for (; k + U <= ki; k += U) {
      T aval[U];
      for (int u = 0; u < U; ++u) aval[u] = arow[k + u];
      const T* brow[U];
      for (int u = 0; u < U; ++u) brow[u] = b + (k + u) * ldb;
      for (std::size_t j = 0; j < ni; ++j) {
        T acc = crow[j];
        for (int u = 0; u < U; ++u) acc += aval[u] * brow[u][j];
        crow[j] = acc;
      }
    }
    for (; k < ki; ++k) {
      const T aval = arow[k];
      const T* brow = b + k * ldb;
      for (std::size_t j = 0; j < ni; ++j) crow[j] += aval * brow[j];
    }
  }
}

template <typename T>
void tile_dispatch(int ilp, const T* a, const T* b, T* c, std::size_t lda,
                   std::size_t ldb, std::size_t ldc, std::size_t mi,
                   std::size_t ni, std::size_t ki) {
  switch (ilp) {
    case 1:
      tile_kernel<T, 1>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    case 2:
      tile_kernel<T, 2>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    case 4:
      tile_kernel<T, 4>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    case 8:
      tile_kernel<T, 8>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    case 16:
      tile_kernel<T, 16>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    case 32:
      tile_kernel<T, 32>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    default:
      tile_kernel<T, 4>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
  }
}

template <typename T>
void gemm_tiled(const T* a, const T* b, T* c, std::size_t m, std::size_t n,
                std::size_t k, T alpha, T beta, const GemmConfig& cfg) {
  // Apply beta scaling once up front.
  if (beta == T{0}) {
    std::fill(c, c + m * n, T{0});
  } else if (beta != T{1}) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (alpha == T{0} || m == 0 || n == 0 || k == 0) return;

  const std::size_t tm = static_cast<std::size_t>(std::max(cfg.tile_m, 1));
  const std::size_t tn = static_cast<std::size_t>(std::max(cfg.tile_n, 1));
  const std::size_t tk = static_cast<std::size_t>(std::max(cfg.tile_k, 1));

  // Scale A once into a staging tile when alpha != 1 so the micro-kernel
  // stays a pure multiply-accumulate.
  std::vector<T> scaled_a;
  const T* a_eff = a;
  if (alpha != T{1}) {
    scaled_a.assign(a, a + m * k);
    for (auto& v : scaled_a) v *= alpha;
    a_eff = scaled_a.data();
  }

  for (std::size_t i0 = 0; i0 < m; i0 += tm) {
    const std::size_t mi = std::min(tm, m - i0);
    for (std::size_t k0 = 0; k0 < k; k0 += tk) {
      const std::size_t ki = std::min(tk, k - k0);
      for (std::size_t j0 = 0; j0 < n; j0 += tn) {
        const std::size_t ni = std::min(tn, n - j0);
        tile_dispatch<T>(cfg.ilp, a_eff + i0 * k + k0, b + k0 * n + j0,
                         c + i0 * n + j0, k, n, n, mi, ni, ki);
      }
    }
  }
}

}  // namespace

void gemm_fp64(const double* a, const double* b, double* c, std::size_t m,
               std::size_t n, std::size_t k, double alpha, double beta,
               const GemmConfig& cfg) {
  gemm_tiled<double>(a, b, c, m, n, k, alpha, beta, cfg);
}

void gemm_fp32(const float* a, const float* b, float* c, std::size_t m,
               std::size_t n, std::size_t k, float alpha, float beta,
               const GemmConfig& cfg) {
  gemm_tiled<float>(a, b, c, m, n, k, alpha, beta, cfg);
}

void gemm_quantized(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t n, std::size_t k, double alpha, double beta,
                    const GemmConfig& cfg) {
  if (cfg.precision == Precision::kFP64) {
    gemm_fp64(a, b, c, m, n, k, alpha, beta, cfg);
    return;
  }

  // Stage operands at the requested precision.  The product of two FP16
  // values is exactly representable in FP32, so rounding on entry followed by
  // an FP32 kernel reproduces tensor-core FP16-multiply/FP32-accumulate.
  // Thread-local scratch keeps per-call staging allocation-free in the hot
  // batched-ERI loops.
  static thread_local std::vector<float> qa, qb, acc;
  qa.resize(m * k);
  qb.resize(k * n);
  switch (cfg.precision) {
    case Precision::kFP16:
      for (std::size_t i = 0; i < m * k; ++i)
        qa[i] = half_t(static_cast<float>(a[i])).to_float();
      for (std::size_t i = 0; i < k * n; ++i)
        qb[i] = half_t(static_cast<float>(b[i])).to_float();
      break;
    case Precision::kTF32:
      for (std::size_t i = 0; i < m * k; ++i)
        qa[i] = to_tf32(static_cast<float>(a[i]));
      for (std::size_t i = 0; i < k * n; ++i)
        qb[i] = to_tf32(static_cast<float>(b[i]));
      break;
    case Precision::kFP32:
    default:
      for (std::size_t i = 0; i < m * k; ++i) qa[i] = static_cast<float>(a[i]);
      for (std::size_t i = 0; i < k * n; ++i) qb[i] = static_cast<float>(b[i]);
      break;
  }

  // FP32 accumulation in-kernel (stage one of dual-stage accumulation).
  acc.assign(m * n, 0.0f);
  GemmConfig fcfg = cfg;
  fcfg.precision = Precision::kFP32;
  gemm_fp32(qa.data(), qb.data(), acc.data(), m, n, k, 1.0f, 0.0f, fcfg);

  // Stage two: widen into the FP64 destination.
  for (std::size_t i = 0; i < m * n; ++i) {
    c[i] = beta * c[i] + alpha * static_cast<double>(acc[i]);
  }
}

void gemm_fp16_naive(const double* a, const double* b, double* c,
                     std::size_t m, std::size_t n, std::size_t k, double alpha,
                     double beta) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // FP16 accumulator: every partial sum is rounded back to binary16,
      // so large partial sums swallow small addends (the failure mode
      // dual-stage accumulation prevents).
      half_t acc(0.0f);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float qa = half_t(static_cast<float>(a[i * k + kk])).to_float();
        const float qb = half_t(static_cast<float>(b[kk * n + j])).to_float();
        acc = half_t(acc.to_float() + qa * qb);
      }
      c[i * n + j] = beta * c[i * n + j] +
                     alpha * static_cast<double>(acc.to_float());
    }
  }
}

void gemm(const MatrixD& a, Trans ta, const MatrixD& b, Trans tb, MatrixD& c,
          double alpha, double beta) {
  MatrixD at, bt;
  const MatrixD* pa = &a;
  const MatrixD* pb = &b;
  if (ta == Trans::kYes) {
    at = a.transposed();
    pa = &at;
  }
  if (tb == Trans::kYes) {
    bt = b.transposed();
    pb = &bt;
  }
  assert(pa->cols() == pb->rows());
  if (c.rows() != pa->rows() || c.cols() != pb->cols()) {
    c.resize(pa->rows(), pb->cols());
  }
  gemm_fp64(pa->data(), pb->data(), c.data(), pa->rows(), pb->cols(),
            pa->cols(), alpha, beta);
}

MatrixD matmul(const MatrixD& a, const MatrixD& b) {
  MatrixD c(a.rows(), b.cols());
  gemm(a, Trans::kNo, b, Trans::kNo, c);
  return c;
}

MatrixD matmul(const MatrixD& a, Trans ta, const MatrixD& b, Trans tb) {
  MatrixD c;
  gemm(a, ta, b, tb, c);
  return c;
}

}  // namespace mako
