#include "linalg/gemm.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mako {
namespace {

// Per-call span for the GEMM firehose category (off in the default trace
// mask; enabled via --trace-all).  Args are formatted only while recording.
inline void annotate_gemm_span(obs::TraceSpan& span, std::size_t m,
                               std::size_t n, std::size_t k) {
  if (span.active()) {
    char args[64];
    std::snprintf(args, sizeof args, "\"m\":%zu,\"n\":%zu,\"k\":%zu", m, n, k);
    span.set_args(args);
  }
}

// Inner micro-kernel: processes one block tile with the K loop unrolled by U.
// The unroll factor is the host-side realization of the paper's implicit
// instruction parallelism: independent K iterations are fused so the
// out-of-order core (standing in for the warp scheduler) can overlap them.
template <typename T, int U>
void tile_kernel(const T* a, const T* b, T* c, std::size_t lda, std::size_t ldb,
                 std::size_t ldc, std::size_t mi, std::size_t ni,
                 std::size_t ki) {
  for (std::size_t i = 0; i < mi; ++i) {
    const T* arow = a + i * lda;
    T* crow = c + i * ldc;
    std::size_t k = 0;
    for (; k + U <= ki; k += U) {
      T aval[U];
      for (int u = 0; u < U; ++u) aval[u] = arow[k + u];
      const T* brow[U];
      for (int u = 0; u < U; ++u) brow[u] = b + (k + u) * ldb;
      for (std::size_t j = 0; j < ni; ++j) {
        T acc = crow[j];
        for (int u = 0; u < U; ++u) acc += aval[u] * brow[u][j];
        crow[j] = acc;
      }
    }
    for (; k < ki; ++k) {
      const T aval = arow[k];
      const T* brow = b + k * ldb;
      for (std::size_t j = 0; j < ni; ++j) crow[j] += aval * brow[j];
    }
  }
}

template <typename T>
void tile_dispatch(int ilp, const T* a, const T* b, T* c, std::size_t lda,
                   std::size_t ldb, std::size_t ldc, std::size_t mi,
                   std::size_t ni, std::size_t ki) {
  switch (ilp) {
    case 1:
      tile_kernel<T, 1>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    case 2:
      tile_kernel<T, 2>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    case 4:
      tile_kernel<T, 4>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    case 8:
      tile_kernel<T, 8>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    case 16:
      tile_kernel<T, 16>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    case 32:
      tile_kernel<T, 32>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
    default:
      tile_kernel<T, 4>(a, b, c, lda, ldb, ldc, mi, ni, ki);
      break;
  }
}

template <typename T>
void gemm_tiled(const T* a, const T* b, T* c, std::size_t m, std::size_t n,
                std::size_t k, T alpha, T beta, const GemmConfig& cfg) {
  // Apply beta scaling once up front.
  if (beta == T{0}) {
    std::fill(c, c + m * n, T{0});
  } else if (beta != T{1}) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (alpha == T{0} || m == 0 || n == 0 || k == 0) return;

  const std::size_t tm = static_cast<std::size_t>(std::max(cfg.tile_m, 1));
  const std::size_t tn = static_cast<std::size_t>(std::max(cfg.tile_n, 1));
  const std::size_t tk = static_cast<std::size_t>(std::max(cfg.tile_k, 1));

  // Scale A once into a staging tile when alpha != 1 so the micro-kernel
  // stays a pure multiply-accumulate.
  std::vector<T> scaled_a;
  const T* a_eff = a;
  if (alpha != T{1}) {
    scaled_a.assign(a, a + m * k);
    for (auto& v : scaled_a) v *= alpha;
    a_eff = scaled_a.data();
  }

  for (std::size_t i0 = 0; i0 < m; i0 += tm) {
    const std::size_t mi = std::min(tm, m - i0);
    for (std::size_t k0 = 0; k0 < k; k0 += tk) {
      const std::size_t ki = std::min(tk, k - k0);
      for (std::size_t j0 = 0; j0 < n; j0 += tn) {
        const std::size_t ni = std::min(tn, n - j0);
        tile_dispatch<T>(cfg.ilp, a_eff + i0 * k + k0, b + k0 * n + j0,
                         c + i0 * n + j0, k, n, n, mi, ni, ki);
      }
    }
  }
}

// --- Packed register-blocked path -------------------------------------------
//
// BLIS-style structure: B is packed into contiguous NR-wide panels and A into
// MR-tall panels (the transpose of either operand is absorbed here, so callers
// never materialize one), then an MR x NR micro-kernel keeps the C fragment in
// registers across the entire K reduction.  This is the host counterpart of a
// CUTLASS threadblock staging tiles through shared memory into an MMA-shaped
// register fragment.

constexpr int kMR = 4;  ///< micro-kernel rows (register fragment height)
constexpr int kNR = 8;  ///< micro-kernel cols (register fragment width)
constexpr std::size_t kBlockM = 96;   ///< A panel rows per pass
constexpr std::size_t kBlockK = 256;  ///< reduction depth per pass
constexpr std::size_t kBlockN = 1024; ///< B panel cols per pass

/// op(A)(r, c) for a dense row-major operand with optional transpose.
template <typename T>
inline T op_at(const T* x, bool trans, std::size_t ld, std::size_t r,
               std::size_t c) {
  return trans ? x[c * ld + r] : x[r * ld + c];
}

/// Packs an (mc x kc) block of alpha*op(A) into MR-tall panels, zero-padding
/// the fringe so the micro-kernel always runs full register tiles.
template <typename T>
void pack_a_block(const T* a, bool trans, std::size_t lda, std::size_t i0,
                  std::size_t p0, std::size_t mc, std::size_t kc, T alpha,
                  T* dst) {
  for (std::size_t ir = 0; ir < mc; ir += kMR) {
    const std::size_t mr = std::min<std::size_t>(kMR, mc - ir);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < mr; ++i) {
        dst[i] = alpha * op_at(a, trans, lda, i0 + ir + i, p0 + p);
      }
      for (std::size_t i = mr; i < kMR; ++i) dst[i] = T{0};
      dst += kMR;
    }
  }
}

/// Packs a (kc x nc) block of op(B) into NR-wide panels, zero-padded.
template <typename T>
void pack_b_block(const T* b, bool trans, std::size_t ldb, std::size_t p0,
                  std::size_t j0, std::size_t kc, std::size_t nc, T* dst) {
  for (std::size_t jr = 0; jr < nc; jr += kNR) {
    const std::size_t nr = std::min<std::size_t>(kNR, nc - jr);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t j = 0; j < nr; ++j) {
        dst[j] = op_at(b, trans, ldb, p0 + p, j0 + jr + j);
      }
      for (std::size_t j = nr; j < kNR; ++j) dst[j] = T{0};
      dst += kNR;
    }
  }
}

/// MR x NR micro-kernel: C(mr, nr) += Ap * Bp over kc, accumulators held in
/// a register-resident fragment for the whole reduction.
template <typename T>
void micro_kernel(std::size_t kc, const T* ap, const T* bp, T* c,
                  std::size_t ldc, std::size_t mr, std::size_t nr) {
  T acc[kMR][kNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const T* brow = bp + p * kNR;
    const T* arow = ap + p * kMR;
    for (int i = 0; i < kMR; ++i) {
      const T av = arow[i];
      for (int j = 0; j < kNR; ++j) acc[i][j] += av * brow[j];
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    T* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
  }
}

template <typename T>
struct PackArena {
  std::vector<T> a, b;
};

template <typename T>
PackArena<T>& pack_arena() {
  static thread_local PackArena<T> arena;
  return arena;
}

/// Direct register-blocked kernel for L1-resident problems: the C fragment
/// stays in registers across the whole K loop, operands are read in place
/// (the A transpose becomes MR strided streams — cheap at this scale), and
/// no packing cost is paid.  `alpha` is folded into the writeback.
template <typename T, bool TA>
void gemm_direct(const T* a, std::size_t lda, const T* b, std::size_t ldb,
                 T* c, std::size_t ldc, std::size_t m, std::size_t n,
                 std::size_t k, T alpha) {
  const auto at = [&](std::size_t i, std::size_t p) -> T {
    return TA ? a[p * lda + i] : a[i * lda + p];
  };
  std::size_t ir = 0;
  for (; ir + kMR <= m; ir += kMR) {
    std::size_t jr = 0;
    for (; jr + kNR <= n; jr += kNR) {
      T acc[kMR][kNR] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const T* brow = b + p * ldb + jr;
        T av[kMR];
        for (int i = 0; i < kMR; ++i) av[i] = at(ir + i, p);
        for (int i = 0; i < kMR; ++i) {
          for (int j = 0; j < kNR; ++j) acc[i][j] += av[i] * brow[j];
        }
      }
      for (int i = 0; i < kMR; ++i) {
        T* crow = c + (ir + i) * ldc + jr;
        for (int j = 0; j < kNR; ++j) crow[j] += alpha * acc[i][j];
      }
    }
    if (jr < n) {  // column fringe
      const std::size_t nr = n - jr;
      T acc[kMR][kNR] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const T* brow = b + p * ldb + jr;
        T av[kMR];
        for (int i = 0; i < kMR; ++i) av[i] = at(ir + i, p);
        for (int i = 0; i < kMR; ++i) {
          for (std::size_t j = 0; j < nr; ++j) acc[i][j] += av[i] * brow[j];
        }
      }
      for (int i = 0; i < kMR; ++i) {
        T* crow = c + (ir + i) * ldc + jr;
        for (std::size_t j = 0; j < nr; ++j) crow[j] += alpha * acc[i][j];
      }
    }
  }
  for (; ir < m; ++ir) {  // row fringe: 1 x NR blocking
    std::size_t jr = 0;
    for (; jr < n; jr += kNR) {
      const std::size_t nr = std::min<std::size_t>(kNR, n - jr);
      T acc[kNR] = {};
      for (std::size_t p = 0; p < k; ++p) {
        const T av = at(ir, p);
        const T* brow = b + p * ldb + jr;
        for (std::size_t j = 0; j < nr; ++j) acc[j] += av * brow[j];
      }
      T* crow = c + ir * ldc + jr;
      for (std::size_t j = 0; j < nr; ++j) crow[j] += alpha * acc[j];
    }
  }
}

template <typename T>
void gemm_packed(const T* a, bool trans_a, const T* b, bool trans_b, T* c,
                 std::size_t m, std::size_t n, std::size_t k, T alpha,
                 T beta) {
  if (beta == T{0}) {
    std::fill(c, c + m * n, T{0});
  } else if (beta != T{1}) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (alpha == T{0} || m == 0 || n == 0 || k == 0) return;

  const std::size_t lda = trans_a ? m : k;
  const std::size_t ldb = trans_b ? k : n;

  // L1-resident problems skip packing entirely: panel staging only pays for
  // itself once the working set spills the innermost cache.
  const std::size_t footprint = (m * k + k * n + m * n) * sizeof(T);
  constexpr std::size_t kDirectLimit = 48 * 1024;
  if (footprint <= kDirectLimit) {
    const T* b_eff = b;
    std::size_t ldb_eff = ldb;
    if (trans_b) {
      // Stage B^T through scratch once; the direct kernel then streams rows.
      PackArena<T>& arena = pack_arena<T>();
      arena.b.resize(k * n);
      for (std::size_t p = 0; p < k; ++p) {
        for (std::size_t j = 0; j < n; ++j) arena.b[p * n + j] = b[j * ldb + p];
      }
      b_eff = arena.b.data();
      ldb_eff = n;
    }
    if (trans_a) {
      gemm_direct<T, true>(a, lda, b_eff, ldb_eff, c, n, m, n, k, alpha);
    } else {
      gemm_direct<T, false>(a, lda, b_eff, ldb_eff, c, n, m, n, k, alpha);
    }
    return;
  }
  PackArena<T>& arena = pack_arena<T>();
  const std::size_t mc_max = std::min(kBlockM, m);
  const std::size_t kc_max = std::min(kBlockK, k);
  const std::size_t nc_max = std::min(kBlockN, n);
  // Round panel heights/widths up to full register tiles (zero-padded).
  const auto round_up = [](std::size_t v, std::size_t q) {
    return (v + q - 1) / q * q;
  };
  arena.a.resize(round_up(mc_max, kMR) * kc_max);
  arena.b.resize(kc_max * round_up(nc_max, kNR));

  for (std::size_t j0 = 0; j0 < n; j0 += kBlockN) {
    const std::size_t nc = std::min(kBlockN, n - j0);
    for (std::size_t p0 = 0; p0 < k; p0 += kBlockK) {
      const std::size_t kc = std::min(kBlockK, k - p0);
      pack_b_block(b, trans_b, ldb, p0, j0, kc, nc, arena.b.data());
      for (std::size_t i0 = 0; i0 < m; i0 += kBlockM) {
        const std::size_t mc = std::min(kBlockM, m - i0);
        pack_a_block(a, trans_a, lda, i0, p0, mc, kc, alpha, arena.a.data());
        for (std::size_t jr = 0; jr < nc; jr += kNR) {
          const std::size_t nr = std::min<std::size_t>(kNR, nc - jr);
          const T* bp = arena.b.data() + (jr / kNR) * kc * kNR;
          for (std::size_t ir = 0; ir < mc; ir += kMR) {
            const std::size_t mr = std::min<std::size_t>(kMR, mc - ir);
            const T* ap = arena.a.data() + (ir / kMR) * kc * kMR;
            micro_kernel(kc, ap, bp, c + (i0 + ir) * n + j0 + jr, n, mr, nr);
          }
        }
      }
    }
  }
}

}  // namespace

void gemm_fp64(const double* a, const double* b, double* c, std::size_t m,
               std::size_t n, std::size_t k, double alpha, double beta,
               const GemmConfig& cfg) {
  obs::TraceSpan span(obs::TraceCat::kGemm, "gemm_fp64");
  annotate_gemm_span(span, m, n, k);
  MAKO_METRIC_COUNT("gemm.calls", 1);
  if (cfg.packed) {
    gemm_packed<double>(a, false, b, false, c, m, n, k, alpha, beta);
  } else {
    gemm_tiled<double>(a, b, c, m, n, k, alpha, beta, cfg);
  }
}

void gemm_fp32(const float* a, const float* b, float* c, std::size_t m,
               std::size_t n, std::size_t k, float alpha, float beta,
               const GemmConfig& cfg) {
  if (cfg.packed) {
    gemm_packed<float>(a, false, b, false, c, m, n, k, alpha, beta);
  } else {
    gemm_tiled<float>(a, b, c, m, n, k, alpha, beta, cfg);
  }
}

void gemm_fp64_ex(const double* a, bool trans_a, const double* b, bool trans_b,
                  double* c, std::size_t m, std::size_t n, std::size_t k,
                  double alpha, double beta, const GemmConfig& cfg) {
  obs::TraceSpan span(obs::TraceCat::kGemm, "gemm_fp64_ex");
  annotate_gemm_span(span, m, n, k);
  MAKO_METRIC_COUNT("gemm.calls", 1);
  if (!cfg.packed && !trans_a && !trans_b) {
    gemm_tiled<double>(a, b, c, m, n, k, alpha, beta, cfg);
    return;
  }
  gemm_packed<double>(a, trans_a, b, trans_b, c, m, n, k, alpha, beta);
}

void quantize_to_float(const double* src, float* dst, std::size_t n,
                       Precision p) {
  MAKO_TRACE_SCOPE(obs::TraceCat::kQuant, "quantize_to_float");
  MAKO_METRIC_COUNT("quant.calls", 1);
  MAKO_METRIC_COUNT("quant.elements", static_cast<std::int64_t>(n));
  switch (p) {
    case Precision::kFP16:
      for (std::size_t i = 0; i < n; ++i)
        dst[i] = half_t(static_cast<float>(src[i])).to_float();
      break;
    case Precision::kTF32:
      for (std::size_t i = 0; i < n; ++i)
        dst[i] = to_tf32(static_cast<float>(src[i]));
      break;
    default:
      for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<float>(src[i]);
      break;
  }
}

void gemm_quantized_ops(const float* qa, bool trans_a, const float* qb,
                        bool trans_b, double* c, std::size_t m, std::size_t n,
                        std::size_t k, double alpha, double beta,
                        const GemmConfig& cfg) {
  obs::TraceSpan span(obs::TraceCat::kGemm, "gemm_quantized_ops");
  annotate_gemm_span(span, m, n, k);
  MAKO_METRIC_COUNT("gemm.calls", 1);
  MAKO_METRIC_COUNT("gemm.quantized_calls", 1);
  // Stage one of dual-stage accumulation: FP32 multiply/accumulate over the
  // pre-rounded operands.
  static thread_local std::vector<float> acc;
  acc.assign(m * n, 0.0f);
  if (cfg.packed || trans_a || trans_b) {
    gemm_packed<float>(qa, trans_a, qb, trans_b, acc.data(), m, n, k, 1.0f,
                       0.0f);
  } else {
    GemmConfig fcfg = cfg;
    fcfg.precision = Precision::kFP32;
    gemm_tiled<float>(qa, qb, acc.data(), m, n, k, 1.0f, 0.0f, fcfg);
  }
  // Stage two: widen into the FP64 destination.
  for (std::size_t i = 0; i < m * n; ++i) {
    c[i] = beta * c[i] + alpha * static_cast<double>(acc[i]);
  }
}

void gemm_quantized(const double* a, const double* b, double* c, std::size_t m,
                    std::size_t n, std::size_t k, double alpha, double beta,
                    const GemmConfig& cfg) {
  if (cfg.precision == Precision::kFP64) {
    gemm_fp64(a, b, c, m, n, k, alpha, beta, cfg);
    return;
  }

  // Stage operands at the requested precision.  The product of two FP16
  // values is exactly representable in FP32, so rounding on entry followed by
  // an FP32 kernel reproduces tensor-core FP16-multiply/FP32-accumulate.
  // Thread-local scratch keeps per-call staging allocation-free in the hot
  // batched-ERI loops.
  static thread_local std::vector<float> qa, qb;
  qa.resize(m * k);
  qb.resize(k * n);
  quantize_to_float(a, qa.data(), m * k, cfg.precision);
  quantize_to_float(b, qb.data(), k * n, cfg.precision);
  gemm_quantized_ops(qa.data(), false, qb.data(), false, c, m, n, k, alpha,
                     beta, cfg);
}

void gemm_fp16_naive(const double* a, const double* b, double* c,
                     std::size_t m, std::size_t n, std::size_t k, double alpha,
                     double beta, bool trans_a) {
  obs::TraceSpan span(obs::TraceCat::kGemm, "gemm_fp16_naive");
  annotate_gemm_span(span, m, n, k);
  MAKO_METRIC_COUNT("gemm.calls", 1);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      // FP16 accumulator: every partial sum is rounded back to binary16,
      // so large partial sums swallow small addends (the failure mode
      // dual-stage accumulation prevents).
      half_t acc(0.0f);
      for (std::size_t kk = 0; kk < k; ++kk) {
        const double av = trans_a ? a[kk * m + i] : a[i * k + kk];
        const float qa = half_t(static_cast<float>(av)).to_float();
        const float qb = half_t(static_cast<float>(b[kk * n + j])).to_float();
        acc = half_t(acc.to_float() + qa * qb);
      }
      c[i * n + j] = beta * c[i * n + j] +
                     alpha * static_cast<double>(acc.to_float());
    }
  }
}

}  // namespace mako
