// Dense symmetric eigensolver and the orthogonalization helpers built on it.
//
// Fock-matrix diagonalization is one of the three DFT stages (Section 2.1);
// the paper delegates it to iterative MatMul-based eigensolvers on GPU.  Here
// we provide a robust direct solver (Householder tridiagonalization followed
// by implicit-shift QL) plus a subspace-iteration solver that expresses the
// diagonalization through GEMMs, mirroring the MatMul-aligned formulation.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace mako {

/// Result of a symmetric eigendecomposition A = V diag(w) V^T.
struct EigenResult {
  VectorD eigenvalues;   ///< ascending
  MatrixD eigenvectors;  ///< column i is the eigenvector for eigenvalues[i]
  /// Iterative solvers report whether they met their tolerance within the
  /// iteration budget; the direct solver always reports true.  The SCF
  /// resilience layer keys its diagonalizer-fallback rung off this.
  bool converged = true;
  std::size_t iterations = 0;
};

/// Full eigendecomposition of a symmetric matrix (direct method).
/// Throws std::invalid_argument if `a` is not square.
EigenResult eigh(const MatrixD& a);

/// Blocked subspace iteration for the lowest `nev` eigenpairs, expressed
/// entirely through GEMMs + small dense solves.  This is the MatMul-aligned
/// iterative eigensolver path; it is validated against eigh() in tests.
/// `max_iter`/`tol` bound the orthogonal iteration.
EigenResult eigh_subspace(const MatrixD& a, std::size_t nev,
                          std::size_t max_iter = 200, double tol = 1e-10);

/// Symmetric (Löwdin) inverse square root S^{-1/2}; eigenvalues below
/// `lindep_threshold` are dropped (canonical orthogonalization), so the
/// result may be rectangular n x n_kept.
MatrixD inverse_sqrt(const MatrixD& s, double lindep_threshold = 1e-9);

/// In-place Cholesky factorization A = L L^T (lower). Returns false if the
/// matrix is not positive definite.
bool cholesky(MatrixD& a);

/// Solves the symmetric linear system A x = b via Cholesky with diagonal
/// regularization fallback; used by DIIS.
VectorD solve_spd(MatrixD a, VectorD b);

/// Solves a general square linear system via partial-pivot LU; used by the
/// DIIS extrapolation (whose B matrix is symmetric indefinite).
VectorD solve_lu(MatrixD a, VectorD b);

}  // namespace mako
