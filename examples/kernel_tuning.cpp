// CompilerMako demonstration: reuse-guided fusion planning and
// architecture-tuned compilation across ERI classes and device generations.
//
//   $ ./kernel_tuning
#include <cstdio>

#include "compilermako/autotuner.hpp"
#include "compilermako/fusion_planner.hpp"

int main() {
  using namespace mako;

  // 1. Reuse-guided planning: what fusion does each class admit on an A100?
  std::printf("Reuse-guided fusion plans (A100, FP64, default tiles)\n");
  std::printf("%-18s %12s %10s %9s\n", "ERI class", "S(F) bytes", "feasible",
              "launches");
  const DeviceSpec a100 = DeviceSpec::a100();
  for (int l = 0; l <= 4; ++l) {
    const EriClassKey key{l, l, l, l, 1, 1};
    const FusionPlan plan = plan_fusion(key, {}, a100);
    std::printf("%-18s %12zu %10s %9d   -> %s\n", key.name().c_str(),
                plan.smem_bytes, plan.feasible ? "yes" : "no",
                plan.kernel_launches, to_string(plan.strategy));
  }

  // Contracted classes cannot coalesce the second GEMM (Eq. 11 needs K=1).
  const EriClassKey contracted{1, 1, 1, 1, 9, 9};
  const FusionPlan cplan = plan_fusion(contracted, {}, a100);
  std::printf("%-18s %12zu %10s %9d   -> %s\n", contracted.name().c_str(),
              cplan.smem_bytes, cplan.feasible ? "yes" : "no",
              cplan.kernel_launches, to_string(cplan.strategy));

  // 2. Architecture-tuned compilation (Algorithm 2): profile a trimmed
  // configuration space for two classes at two precisions.
  std::printf("\nArchitecture-tuned compilation (profiling on this host)\n");
  TunerOptions options;
  options.tile_m = {16, 48};
  options.tile_n = {16, 48};
  options.tile_k = {16, 32};
  options.ilp_factors = {1, 4, 16};
  options.calibration_batch = 4;
  Autotuner tuner(a100, options);

  std::printf("%-18s %6s %5s  %-16s %4s %10s\n", "ERI class", "prec",
              "cands", "tile(m,n,k)", "ilp", "best ms");
  for (const EriClassKey& key :
       {EriClassKey{2, 2, 2, 2, 1, 1}, EriClassKey{1, 1, 1, 1, 4, 4}}) {
    for (Precision p : {Precision::kFP64, Precision::kFP16}) {
      const TunedKernel& tuned = tuner.tune(key, p);
      char tile[32];
      std::snprintf(tile, sizeof(tile), "(%d,%d,%d)", tuned.config.gemm.tile_m,
                    tuned.config.gemm.tile_n, tuned.config.gemm.tile_k);
      std::printf("%-18s %6s %5d  %-16s %4d %10.3f\n", key.name().c_str(),
                  to_string(p), tuned.candidates_profiled, tile,
                  tuned.config.gemm.ilp, tuned.measured_seconds * 1e3);
    }
  }

  // 3. Portability: the same planner adapts to other device generations.
  std::printf("\nPortability: (gg|gg) K{1,1} fully-fused feasibility\n");
  for (const DeviceSpec& dev :
       {DeviceSpec::v100(), DeviceSpec::a100(), DeviceSpec::h100()}) {
    GemmConfig quant;
    quant.precision = Precision::kFP16;
    const FusionPlan p = plan_fusion(EriClassKey{4, 4, 4, 4, 1, 1}, quant, dev);
    std::printf("  %-16s smem budget %6zu KiB -> %s\n", dev.name.c_str(),
                dev.fusion_smem_budget() / 1024, to_string(p.strategy));
  }
  return 0;
}
