// Linear-workload scan: polyglycine chains of growing length, comparing the
// matrix-aligned Mako engine against the per-quartet reference engine —
// a miniature of the paper's Fig. 8 linear-systems sweep.
//
//   $ ./polyglycine_scan [max_residues]
#include <cstdio>
#include <cstdlib>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "scf/scf.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  const int max_n = (argc > 1) ? std::atoi(argv[1]) : 2;

  std::printf("Polyglycine (Gly)_n scan, HF/STO-3G, fixed 2 SCF iterations\n");
  std::printf("%4s %6s %8s %14s %14s %9s\n", "n", "atoms", "nbf",
              "t_iter[ref] s", "t_iter[mako] s", "speedup");

  for (int n = 1; n <= max_n; ++n) {
    const mako::Molecule mol = mako::make_polyglycine(n);
    const mako::BasisSet basis(mol, "sto-3g");

    mako::ScfOptions ref_opt;
    ref_opt.fock.engine = mako::EriEngineKind::kReference;
    ref_opt.fixed_iterations = 2;

    mako::ScfOptions mako_opt;
    mako_opt.fock.engine = mako::EriEngineKind::kMako;
    mako_opt.fixed_iterations = 2;

    const mako::ScfResult r_ref = mako::run_scf(mol, basis, ref_opt);
    const mako::ScfResult r_mako = mako::run_scf(mol, basis, mako_opt);

    const double t_ref = r_ref.iteration_log.back().seconds;
    const double t_mako = r_mako.iteration_log.back().seconds;
    std::printf("%4d %6zu %8zu %14.3f %14.3f %8.2fx\n", n, mol.size(),
                basis.nbf(), t_ref, t_mako, t_ref / t_mako);
  }

  // Converge the smallest chain fully and report its energy.
  const mako::Molecule g1 = mako::make_polyglycine(1);
  const mako::BasisSet b1(g1, "sto-3g");
  const mako::ScfResult r = mako::run_scf(g1, b1, {});
  std::printf("\nglycine HF/STO-3G total energy: %.8f Eh (%s in %d iters)\n",
              r.energy, r.converged ? "converged" : "NOT converged",
              r.iterations);
  return 0;
}
