// QuantMako demonstration: B3LYP water with and without convergence-aware
// quantization, showing the accuracy contract (agreement well within
// 1 mHartree) and the per-iteration precision routing.
//
//   $ ./quantized_dft
#include <cmath>
#include <cstdio>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "scf/scf.hpp"

int main() {
  const mako::Molecule mol = mako::make_water();
  const mako::BasisSet basis(mol, "6-31g");

  mako::ScfOptions exact;
  exact.xc = mako::XcFunctional(mako::XcKind::kB3LYP);
  exact.grid = mako::GridSpec::standard();

  mako::ScfOptions quant = exact;
  quant.enable_quantization = true;
  quant.precision.quant_precision = mako::Precision::kFP16;

  std::printf("B3LYP/6-31G water, FP64 reference SCF...\n");
  const mako::ScfResult r_exact = mako::run_scf(mol, basis, exact);
  std::printf("  E = %.10f Eh (%d iterations)\n\n", r_exact.energy,
              r_exact.iterations);

  std::printf("B3LYP/6-31G water, QuantMako convergence-aware SCF...\n");
  const mako::ScfResult r_quant = mako::run_scf(mol, basis, quant);
  std::printf("  E = %.10f Eh (%d iterations)\n\n", r_quant.energy,
              r_quant.iterations);

  std::printf("per-iteration precision routing (quantized run):\n");
  std::printf("%5s %16s %11s %8s %8s %8s\n", "iter", "energy", "error",
              "fp64", "quant", "pruned");
  for (std::size_t i = 0; i < r_quant.iteration_log.size(); ++i) {
    const auto& rec = r_quant.iteration_log[i];
    std::printf("%5zu %16.8f %11.2e %8lld %8lld %8lld\n", i, rec.energy,
                rec.error, static_cast<long long>(rec.quartets_fp64),
                static_cast<long long>(rec.quartets_quantized),
                static_cast<long long>(rec.quartets_pruned));
  }

  const double delta_mhartree =
      std::fabs(r_quant.energy - r_exact.energy) * 1e3;
  std::printf("\n|E_quant - E_fp64| = %.4f mHartree (chemical accuracy "
              "threshold: 1 mHartree) -> %s\n",
              delta_mhartree, delta_mhartree < 1.0 ? "PASS" : "FAIL");
  return delta_mhartree < 1.0 ? 0 : 1;
}
