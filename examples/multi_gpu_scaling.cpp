// Multi-device scaling walkthrough on the simulated cluster: partitions a
// real Fock workload (shell-pair tasks with measured cost structure) across
// 1..64 ranks and reports the modeled parallel efficiency — a small-scale
// version of the Fig-10 experiment (see bench_fig10_scaling for the
// ubiquitin-sized run).
//
//   $ ./multi_gpu_scaling
#include <cstdio>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "integrals/eri_reference.hpp"
#include "integrals/schwarz.hpp"
#include "parallel/simcomm.hpp"

int main() {
  using namespace mako;

  // Workload: a 8-water cluster at def2-TZVP-level shell structure.
  const Molecule mol = make_water_cluster(8, 3);
  const BasisSet basis(mol, "def2-tzvp");
  std::printf("workload: %zu atoms, %zu shells, %zu basis functions\n",
              mol.size(), basis.num_shells(), basis.nbf());

  // Task costs: one task per bra shell pair; cost = sum over ket pairs of
  // the per-quartet FLOP estimate, zeroing Schwarz-negligible ket pairs.
  const MatrixD q = schwarz_bounds(basis);
  const auto& shells = basis.shells();
  std::vector<double> pair_cost;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < shells.size(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (q(i, j) < 1e-10) continue;
      pairs.emplace_back(i, j);
    }
  }
  pair_cost.reserve(pairs.size());
  for (const auto& [i, j] : pairs) {
    double cost = 0.0;
    for (const auto& [k, l] : pairs) {
      if (q(i, j) * q(k, l) < 1e-10) continue;
      cost += ReferenceEriEngine::quartet_flop_estimate(
          shells[i].l, shells[j].l, shells[k].l, shells[l].l,
          shells[i].nprim() * shells[j].nprim(),
          shells[k].nprim() * shells[l].nprim());
    }
    pair_cost.push_back(cost * 1e-12);  // FLOPs -> seconds at ~1 TFLOP/s
  }
  std::printf("significant bra shell pairs (tasks): %zu\n\n", pairs.size());

  const std::size_t fock_bytes = 8 * basis.nbf() * basis.nbf();
  const ClusterModel cluster;

  std::printf("%6s %16s %16s %12s\n", "ranks", "eff[round-robin]",
              "eff[LPT greedy]", "balance[LPT]");
  for (int r : {1, 2, 4, 8, 16, 32, 64}) {
    const Partition rr = partition_round_robin(pair_cost, r);
    const Partition lpt = partition_lpt(pair_cost, r);
    std::printf("%6d %15.1f%% %15.1f%% %11.3f\n", r,
                100.0 * parallel_efficiency(rr, r, fock_bytes, cluster),
                100.0 * parallel_efficiency(lpt, r, fock_bytes, cluster),
                lpt.balance());
  }
  std::printf("\nLPT scheduling (enabled by Mako's statically known batch "
              "costs) sustains higher efficiency at scale.\n");
  return 0;
}
