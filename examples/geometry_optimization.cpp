// Geometry optimization with analytic RHF forces: BFGS in Cartesian
// coordinates.  Optimizes H2 and water at HF/STO-3G and reports the final
// geometries next to the literature equilibrium values.
//
//   $ ./geometry_optimization
#include <cstdio>
#include <vector>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "chem/elements.hpp"
#include "scf/gradient.hpp"

namespace {
using namespace mako;

ScfOptions tight() {
  ScfOptions opt;
  opt.energy_convergence = 1e-10;
  opt.diis_convergence = 1e-8;
  opt.max_iterations = 200;
  return opt;
}

struct OptResult {
  Molecule geometry;
  double energy = 0.0;
  int steps = 0;
  bool converged = false;
};

/// Plain BFGS with backtracking on the SCF energy surface.
OptResult optimize(Molecule mol, const std::string& basis_name,
                   int max_steps = 50, double gtol = 3e-5) {
  const std::size_t n = 3 * mol.size();
  MatrixD hinv = MatrixD::identity(n);  // inverse Hessian estimate

  auto pack = [&](const std::vector<Vec3>& g) {
    VectorD v(n);
    for (std::size_t a = 0; a < mol.size(); ++a) {
      for (int ax = 0; ax < 3; ++ax) v[3 * a + ax] = g[a][ax];
    }
    return v;
  };
  auto evaluate = [&](const Molecule& m, VectorD& grad) {
    const BasisSet basis(m, basis_name);
    const ScfResult scf = run_scf(m, basis, tight());
    grad = pack(rhf_gradient(m, basis, scf).gradient);
    return scf.energy;
  };

  OptResult out;
  VectorD grad;
  double energy = evaluate(mol, grad);

  for (int step = 0; step < max_steps; ++step) {
    double gmax = 0.0;
    for (double v : grad) gmax = std::max(gmax, std::fabs(v));
    if (gmax < gtol) {
      out.converged = true;
      break;
    }

    // Search direction p = -Hinv * grad.
    VectorD p(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) p[i] -= hinv(i, j) * grad[j];
    }

    // Backtracking line search.
    double alpha = 1.0;
    Molecule trial = mol;
    VectorD grad_new;
    double energy_new = energy;
    for (int ls = 0; ls < 12; ++ls) {
      std::vector<Atom> atoms = mol.atoms();
      for (std::size_t a = 0; a < atoms.size(); ++a) {
        for (int ax = 0; ax < 3; ++ax) {
          atoms[a].position[ax] += alpha * p[3 * a + ax];
        }
      }
      trial = Molecule(atoms, mol.charge());
      energy_new = evaluate(trial, grad_new);
      if (energy_new < energy + 1e-12) break;
      alpha *= 0.5;
    }

    // BFGS update of the inverse Hessian.
    VectorD s(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = alpha * p[i];
      y[i] = grad_new[i] - grad[i];
    }
    double sy = 0.0;
    for (std::size_t i = 0; i < n; ++i) sy += s[i] * y[i];
    if (sy > 1e-12) {
      // Hinv <- (I - s y^T / sy) Hinv (I - y s^T / sy) + s s^T / sy.
      VectorD hy(n, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) hy[i] += hinv(i, j) * y[j];
      }
      double yhy = 0.0;
      for (std::size_t i = 0; i < n; ++i) yhy += y[i] * hy[i];
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          hinv(i, j) += (sy + yhy) * s[i] * s[j] / (sy * sy) -
                        (hy[i] * s[j] + s[i] * hy[j]) / sy;
        }
      }
    }

    mol = trial;
    grad = grad_new;
    energy = energy_new;
    ++out.steps;
  }

  out.geometry = mol;
  out.energy = energy;
  return out;
}

}  // namespace

int main() {
  std::printf("BFGS geometry optimization with analytic RHF forces\n\n");

  // H2: literature RHF/STO-3G equilibrium bond length is 1.346 Bohr.
  {
    Molecule h2;
    h2.add_atom(1, 0, 0, 0);
    h2.add_atom(1, 0, 0, 1.8);  // start well away from equilibrium
    const OptResult r = optimize(h2, "sto-3g");
    const double bond =
        distance(r.geometry.atoms()[0].position, r.geometry.atoms()[1].position);
    std::printf("H2 / STO-3G: %d steps, %s\n", r.steps,
                r.converged ? "converged" : "NOT converged");
    std::printf("  E  = %.8f Eh\n", r.energy);
    std::printf("  r  = %.4f Bohr (literature RHF/STO-3G: 1.346)\n\n", bond);
  }

  // Water: optimize from a distorted start.
  {
    Molecule w = make_water();
    std::vector<Atom> atoms = w.atoms();
    atoms[1].position[0] += 0.25;
    atoms[2].position[1] -= 0.20;
    const OptResult r = optimize(Molecule(atoms, 0), "sto-3g");
    const auto& a = r.geometry.atoms();
    const double r1 = distance(a[0].position, a[1].position);
    const double r2 = distance(a[0].position, a[2].position);
    // Angle via dot product.
    double dot = 0.0;
    for (int ax = 0; ax < 3; ++ax) {
      dot += (a[1].position[ax] - a[0].position[ax]) *
             (a[2].position[ax] - a[0].position[ax]);
    }
    const double angle = std::acos(dot / (r1 * r2)) * 180.0 / 3.14159265358979;
    std::printf("H2O / STO-3G: %d steps, %s\n", r.steps,
                r.converged ? "converged" : "NOT converged");
    std::printf("  E      = %.8f Eh\n", r.energy);
    std::printf("  r(OH)  = %.4f / %.4f Angstrom (literature RHF/STO-3G: "
                "0.989)\n",
                r1 * kAngstromPerBohr, r2 * kAngstromPerBohr);
    std::printf("  HOH    = %.2f degrees (literature RHF/STO-3G: 100.0)\n",
                angle);
  }
  return 0;
}
