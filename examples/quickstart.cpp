// Quickstart: compute the Hartree-Fock energy of water with Mako.
//
//   $ ./quickstart [path/to/molecule.xyz]
//
// Demonstrates the minimal public API: build a molecule, configure the
// engine, run a single-point energy, print the artifact-style report.
#include <cstdio>
#include <iostream>

#include "chem/builders.hpp"
#include "core/mako.hpp"

int main(int argc, char** argv) {
  // Load a molecule from an XYZ file, or fall back to built-in water.
  mako::Molecule mol;
  if (argc > 1) {
    mol = mako::Molecule::from_xyz_file(argv[1]);
    std::printf("loaded %zu atoms from %s\n", mol.size(), argv[1]);
  } else {
    mol = mako::make_water();
    std::printf("using built-in water molecule\n");
  }

  // Configure Mako: basis set, functional, and the matrix-aligned engine.
  mako::MakoOptions options;
  options.basis = "sto-3g";
  options.functional = "hf";
  options.engine = mako::EriEngineKind::kMako;

  mako::MakoEngine engine(options);
  const mako::MakoReport report = engine.compute_energy(mol);

  std::cout << report.summary();

  // The converged orbital energies are available for downstream analysis.
  std::printf("\noccupied orbital energies (Eh):");
  const int nocc = mol.num_electrons() / 2;
  for (int i = 0; i < nocc; ++i) {
    std::printf(" %.4f", report.scf.orbital_energies[i]);
  }
  std::printf("\n");
  return 0;
}
